#include "src/obs/telemetry.h"

#include <algorithm>

#include "src/core/kernel.h"
#include "src/obs/json_writer.h"

namespace emeralds {
namespace obs {

NodeTelemetry CollectNodeTelemetry(const Kernel& kernel, const TraceAnalysis& analysis,
                                   const ChainAnalysis& chains) {
  NodeTelemetry t;
  t.collected = true;

  const KernelStats& s = kernel.stats();
  t.jobs_completed = s.jobs_completed;
  t.deadline_misses = s.deadline_misses;
  t.headroom_low_events = s.headroom_low_events;
  t.trace_dropped = kernel.trace().dropped();
  t.stats_snapshot_drops = s.stats_snapshot_drops;
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    t.cycles[b] = s.cycles.buckets[b];
    t.cycles_total += t.cycles[b];
  }
  t.num_cores = s.num_cores;
  for (int c = 0; c < s.num_cores && c < kMaxStatCores; ++c) {
    t.core_cycles[c] = s.core_cycles[c].total();
  }

  // Headroom minimum across every thread the monitor has scored.
  for (size_t i = 0; i < kernel.thread_count(); ++i) {
    const Tcb& tcb = kernel.thread(ThreadId(static_cast<int>(i)));
    if (tcb.headroom_seen && (!t.headroom_seen || tcb.headroom_min < t.headroom_min)) {
      t.headroom_seen = true;
      t.headroom_min = tcb.headroom_min;
    }
  }

  // Job response times across all tasks: a bucket-sum merge of the per-task
  // histograms the analyzer already built.
  for (const TaskMetrics& task : analysis.tasks) {
    if (task.seen) {
      t.response.Merge(task.response);
    }
  }

  t.chains.reserve(chains.chains.size());
  for (const ChainReport& c : chains.chains) {
    ChainTelemetry ct;
    ct.name = c.name;
    ct.deadline_min = c.deadline;
    ct.deadline_max = c.deadline;
    ct.completed = c.completed;
    ct.overruns = c.overruns;
    ct.incomplete = c.incomplete;
    ct.e2e = c.e2e;
    ct.hops.reserve(c.hops.size());
    for (const ChainHopStats& h : c.hops) {
      ChainTelemetry::Hop hop;
      hop.queue = h.queue;
      hop.exec = h.exec;
      ct.hops.push_back(hop);
    }
    t.chain_overruns += c.overruns;
    t.chains.push_back(std::move(ct));
  }
  return t;
}

void MergeNodeTelemetry(FleetTelemetry* fleet, const NodeTelemetry& node, int node_index) {
  if (!node.collected) {
    return;
  }
  ++fleet->nodes_collected;
  fleet->jobs_completed += node.jobs_completed;
  fleet->deadline_misses += node.deadline_misses;
  fleet->chain_overruns += node.chain_overruns;
  fleet->headroom_low_total += node.headroom_low_events;
  if (node.headroom_seen &&
      (!fleet->headroom_seen || node.headroom_min < fleet->headroom_min)) {
    fleet->headroom_seen = true;
    fleet->headroom_min = node.headroom_min;
    fleet->headroom_min_node = node_index;
  }
  fleet->trace_dropped_total += node.trace_dropped;
  if (node.trace_dropped > fleet->trace_dropped_worst) {
    fleet->trace_dropped_worst = node.trace_dropped;
    fleet->trace_dropped_worst_node = node_index;
  }
  fleet->stats_snapshot_drops_total += node.stats_snapshot_drops;
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    fleet->cycles[b] += node.cycles[b];
  }
  fleet->cycles_total += node.cycles_total;
  fleet->max_cores = std::max(fleet->max_cores, node.num_cores);
  for (int c = 0; c < node.num_cores && c < kMaxStatCores; ++c) {
    fleet->core_cycles[c] += node.core_cycles[c];
  }
  fleet->response.Merge(node.response);

  for (const ChainTelemetry& nc : node.chains) {
    ChainTelemetry* fc = nullptr;
    for (ChainTelemetry& existing : fleet->chains) {
      if (existing.name == nc.name) {
        fc = &existing;
        break;
      }
    }
    if (fc == nullptr) {
      fleet->chains.push_back(nc);
      continue;
    }
    fc->deadline_min = std::min(fc->deadline_min, nc.deadline_min);
    fc->deadline_max = std::max(fc->deadline_max, nc.deadline_max);
    fc->completed += nc.completed;
    fc->overruns += nc.overruns;
    fc->incomplete += nc.incomplete;
    fc->e2e.Merge(nc.e2e);
    if (fc->hops.size() < nc.hops.size()) {
      fc->hops.resize(nc.hops.size());
    }
    for (size_t i = 0; i < nc.hops.size(); ++i) {
      fc->hops[i].queue.Merge(nc.hops[i].queue);
      fc->hops[i].exec.Merge(nc.hops[i].exec);
    }
  }
}

void AppendTelemetryHistogram(Json& j, const char* key, const Log2Histogram& h) {
  j.Key(key);
  j.OpenObject();
  j.Int("count", static_cast<int64_t>(h.count()));
  j.Number("min_us", h.count() > 0 ? h.min().micros_f() : 0.0);
  j.Number("max_us", h.count() > 0 ? h.max().micros_f() : 0.0);
  j.Number("mean_us", h.mean().micros_f());
  j.Number("p50_us", h.PercentileBound(0.50).micros_f());
  j.Number("p90_us", h.PercentileBound(0.90).micros_f());
  j.Number("p99_us", h.PercentileBound(0.99).micros_f());
  j.Number("p999_us", h.PercentileBound(0.999).micros_f());
  j.Number("total_us", h.total().micros_f());
  j.CloseObject();
}

namespace {

void AppendChainTelemetry(Json& j, const ChainTelemetry& c) {
  j.OpenObject();
  j.String("name", c.name);
  j.Number("deadline_min_us", c.deadline_min.micros_f());
  j.Number("deadline_max_us", c.deadline_max.micros_f());
  j.Int("completed", static_cast<int64_t>(c.completed));
  j.Int("overruns", static_cast<int64_t>(c.overruns));
  j.Int("incomplete_instances", static_cast<int64_t>(c.incomplete));
  AppendTelemetryHistogram(j, "e2e", c.e2e);
  j.Key("hops");
  j.OpenArray();
  for (const ChainTelemetry::Hop& hop : c.hops) {
    j.OpenObject();
    AppendTelemetryHistogram(j, "queue", hop.queue);
    AppendTelemetryHistogram(j, "exec", hop.exec);
    j.CloseObject();
  }
  j.CloseArray();
  j.CloseObject();
}

void AppendCoreCycles(Json& j, const Duration (&core_cycles)[kMaxStatCores], int cores) {
  j.Key("core_cycles_us");
  j.OpenArray();
  for (int c = 0; c < cores && c < kMaxStatCores; ++c) {
    j.NumberElem(core_cycles[c].micros_f());
  }
  j.CloseArray();
}

void AppendCycles(Json& j, const Duration (&cycles)[kNumCycleBuckets], Duration total) {
  j.Key("cycles");
  j.OpenObject();
  j.Number("total_us", total.micros_f());
  j.Key("buckets_us");
  j.OpenObject();
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    j.Number(CycleBucketToString(static_cast<CycleBucket>(b)), cycles[b].micros_f());
  }
  j.CloseObject();
  // Shares as fractions of the node/fleet total: the at-a-glance "where did
  // the virtual time go" view.
  j.Key("shares");
  j.OpenObject();
  double denom = total.nanos() > 0 ? static_cast<double>(total.nanos()) : 1.0;
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    j.Number(CycleBucketToString(static_cast<CycleBucket>(b)),
             static_cast<double>(cycles[b].nanos()) / denom);
  }
  j.CloseObject();
  j.CloseObject();
}

}  // namespace

void AppendNodeTelemetrySection(Json& j, const NodeTelemetry& t) {
  j.OpenObject();
  j.Bool("collected", t.collected);
  j.Int("jobs_completed", static_cast<int64_t>(t.jobs_completed));
  j.Int("deadline_misses", static_cast<int64_t>(t.deadline_misses));
  j.Int("chain_overruns", static_cast<int64_t>(t.chain_overruns));
  j.Key("headroom");
  j.OpenObject();
  j.Bool("seen", t.headroom_seen);
  j.Number("min_us", t.headroom_seen ? t.headroom_min.micros_f() : 0.0);
  j.Int("low_events", static_cast<int64_t>(t.headroom_low_events));
  j.CloseObject();
  j.Int("trace_dropped", static_cast<int64_t>(t.trace_dropped));
  j.Int("stats_snapshot_drops", static_cast<int64_t>(t.stats_snapshot_drops));
  AppendCycles(j, t.cycles, t.cycles_total);
  AppendCoreCycles(j, t.core_cycles, t.num_cores);
  AppendTelemetryHistogram(j, "response", t.response);
  j.Key("chains");
  j.OpenArray();
  for (const ChainTelemetry& c : t.chains) {
    AppendChainTelemetry(j, c);
  }
  j.CloseArray();
  j.CloseObject();
}

void AppendFleetTelemetrySection(Json& j, const FleetTelemetry& t) {
  j.OpenObject();
  j.String("schema", kFleetTelemetrySchema);
  j.Int("nodes_collected", t.nodes_collected);
  j.Int("jobs_completed", static_cast<int64_t>(t.jobs_completed));
  j.Int("deadline_misses", static_cast<int64_t>(t.deadline_misses));
  j.Int("chain_overruns", static_cast<int64_t>(t.chain_overruns));
  j.Key("headroom");
  j.OpenObject();
  j.Bool("seen", t.headroom_seen);
  j.Number("min_us", t.headroom_seen ? t.headroom_min.micros_f() : 0.0);
  j.Int("min_node", t.headroom_min_node);
  j.Int("low_events_total", static_cast<int64_t>(t.headroom_low_total));
  j.CloseObject();
  j.Key("trace");
  j.OpenObject();
  j.Int("dropped_total", static_cast<int64_t>(t.trace_dropped_total));
  j.Int("worst_node", t.trace_dropped_worst_node);
  j.Int("worst_node_dropped", static_cast<int64_t>(t.trace_dropped_worst));
  j.CloseObject();
  j.Int("stats_snapshot_drops", static_cast<int64_t>(t.stats_snapshot_drops_total));
  AppendCycles(j, t.cycles, t.cycles_total);
  AppendCoreCycles(j, t.core_cycles, t.max_cores);
  AppendTelemetryHistogram(j, "response", t.response);
  j.Key("chains");
  j.OpenArray();
  for (const ChainTelemetry& c : t.chains) {
    AppendChainTelemetry(j, c);
  }
  j.CloseArray();
  j.CloseObject();
}

}  // namespace obs
}  // namespace emeralds
