#include "src/obs/perfetto_export.h"

#include <cinttypes>

#include "src/base/json.h"
#include "src/core/kernel.h"

namespace emeralds {
namespace obs {
namespace {

// Emits traceEvents entries with the shared pid/comma bookkeeping. One
// writer spans every window of a multi-node merge; set_pid() switches the
// process between windows without resetting the comma state.
class EventWriter {
 public:
  explicit EventWriter(std::FILE* out) : out_(out) {}

  void set_pid(int pid) { pid_ = pid; }

  void Open(const char* ph, double ts_us, int tid) {
    std::fprintf(out_, "%s  {\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f",
                 count_ == 0 ? "" : ",\n", ph, pid_, tid, ts_us);
    ++count_;
  }

  void Field(const char* key, const char* value) {
    std::string buf;
    JsonAppendEscaped(&buf, value);
    std::fprintf(out_, ",\"%s\":%s", key, buf.c_str());
  }

  void Raw(const char* text) { std::fputs(text, out_); }
  void Dur(double dur_us) { std::fprintf(out_, ",\"dur\":%.3f", dur_us); }
  void Close() { std::fputs("}", out_); }

  // Metadata entry (no timestamp).
  void Metadata(const char* name, int tid, const std::string& value) {
    std::string buf;
    JsonAppendEscaped(&buf, value);
    std::fprintf(out_,
                 "%s  {\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"args\":{\"name\":%s}}",
                 count_ == 0 ? "" : ",\n", pid_, tid, name, buf.c_str());
    ++count_;
  }

  // Instant marker (thread scope).
  void Instant(double ts_us, int tid, const char* name, const char* cat) {
    Open("i", ts_us, tid);
    Field("name", name);
    Field("cat", cat);
    Raw(",\"s\":\"t\"");
    Close();
  }

  // Async span begin/end: these pair by (cat, id) and render as a nested
  // track slice, which is how job and semaphore spans appear per thread.
  void Async(const char* ph, double ts_us, int tid, const char* name, const char* cat,
             const char* id) {
    Open(ph, ts_us, tid);
    Field("name", name);
    Field("cat", cat);
    Field("id", id);
    Close();
  }

  size_t count() const { return count_; }

 private:
  std::FILE* out_;
  int pid_ = 1;
  size_t count_ = 0;
};

double TsUs(Instant t) { return static_cast<double>(t.nanos()) / 1e3; }

std::string ThreadLabel(const PerfettoExportOptions& options, int32_t id) {
  if (id >= 0 && static_cast<size_t>(id) < options.thread_names.size() &&
      !options.thread_names[id].empty()) {
    return options.thread_names[id];
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "t%d", id);
  return buf;
}

// Emits one window's events through the shared writer. `flow_counter` is
// the cross-window PI flow-id sequence (flow ids must be unique across the
// whole document, not per window).
void ExportWindow(EventWriter& w, const TraceEvent* events, size_t count,
                  const PerfettoExportOptions& options, uint64_t* flow_counter) {
  w.set_pid(options.pid);
  // Node-scoped id prefix: spans and flows from different processes must
  // never pair, so every id is namespaced once the pid leaves the default.
  char sp[16];
  if (options.pid == 1) {
    sp[0] = '\0';
  } else {
    std::snprintf(sp, sizeof(sp), "p%d.", options.pid);
  }
  w.Metadata("process_name", 0, options.process_name);

  // Thread-name metadata for every thread id that appears in the window.
  std::vector<bool> named;
  auto name_thread = [&](int32_t id) {
    if (id < 0 || id > 65535) {
      return;
    }
    if (static_cast<size_t>(id) >= named.size()) {
      named.resize(id + 1, false);
    }
    if (!named[id]) {
      named[id] = true;
      w.Metadata("thread_name", id, ThreadLabel(options, id));
    }
  };
  for (size_t i = 0; i < count; ++i) {
    const TraceEvent& e = events[i];
    if (e.type == TraceEventType::kChainEmit || e.type == TraceEventType::kChainConsume) {
      // arg0 is a token origin; the acting thread id is packed into arg2.
      name_thread(ChainActorOf(e.arg2));
      continue;
    }
    if (e.type == TraceEventType::kTraceEpoch) {
      continue;  // arg0 is an epoch number
    }
    if (e.type == TraceEventType::kOverheadSpan) {
      name_thread(e.arg2 - 1);  // arg0 packs (bucket, core); arg2 = tid + 1
      continue;
    }
    name_thread(e.arg0);
    if (e.type == TraceEventType::kContextSwitch || e.type == TraceEventType::kPiInherit) {
      name_thread(e.arg1);
    }
  }

  if (options.dropped_events > 0 && count > 0) {
    char label[64];
    std::snprintf(label, sizeof(label), "%" PRIu64 " events dropped before window",
                  options.dropped_events);
    w.Open("i", TsUs(events[0].time), 0);
    w.Field("name", label);
    w.Field("cat", "trace");
    w.Raw(",\"s\":\"p\"");
    w.Close();
  }

  // Running-state tracking for per-thread "running" slices.
  struct OpenSlice {
    bool open = false;
    Instant since;
  };
  std::vector<OpenSlice> running;
  auto slice = [&](int32_t id) -> OpenSlice* {
    if (id < 0 || id > 65535) {
      return nullptr;
    }
    if (static_cast<size_t>(id) >= running.size()) {
      running.resize(id + 1);
    }
    return &running[id];
  };
  // Open block spans per thread (semaphore id, or -1): the resolving
  // acquire closes the span before opening the hold span.
  std::vector<int32_t> blocked_on;
  auto blocked_slot = [&](int32_t id) -> int32_t* {
    if (id < 0 || id > 65535) {
      return nullptr;
    }
    if (static_cast<size_t>(id) >= blocked_on.size()) {
      blocked_on.resize(id + 1, -1);
    }
    return &blocked_on[id];
  };
  char name[64];
  char span_id[64];

  for (size_t i = 0; i < count; ++i) {
    const TraceEvent& e = events[i];
    double ts = TsUs(e.time);
    switch (e.type) {
      case TraceEventType::kContextSwitch: {
        OpenSlice* outgoing = slice(e.arg0);
        if (outgoing != nullptr && outgoing->open) {
          w.Open("X", TsUs(outgoing->since), e.arg0);
          w.Field("name", "running");
          w.Field("cat", "sched");
          w.Dur(ts - TsUs(outgoing->since));
          w.Close();
          outgoing->open = false;
        }
        OpenSlice* incoming = slice(e.arg1);
        if (incoming != nullptr) {
          incoming->open = true;
          incoming->since = e.time;
        }
        break;
      }
      case TraceEventType::kJobRelease:
      case TraceEventType::kJobComplete:
        std::snprintf(span_id, sizeof(span_id), "%sjob.t%d.%d", sp, e.arg0, e.arg1);
        std::snprintf(name, sizeof(name), "job %d", e.arg1);
        w.Async(e.type == TraceEventType::kJobRelease ? "b" : "e", ts, e.arg0, name, "job",
                span_id);
        break;
      case TraceEventType::kDeadlineMiss:
        std::snprintf(name, sizeof(name), "DEADLINE MISS job %d", e.arg1);
        w.Instant(ts, e.arg0, name, "deadline");
        break;
      case TraceEventType::kSemAcquire:
      case TraceEventType::kSemRelease: {
        if (e.type == TraceEventType::kSemAcquire) {
          // A resolving acquire ends the thread's open block span first.
          int32_t* blocked = blocked_slot(e.arg0);
          if (blocked != nullptr && *blocked == e.arg1) {
            std::snprintf(span_id, sizeof(span_id), "%sblock.t%d.s%d", sp, e.arg0, e.arg1);
            std::snprintf(name, sizeof(name), "blocked on S%d", e.arg1);
            w.Async("e", ts, e.arg0, name, "semblock", span_id);
            *blocked = -1;
          }
        }
        // Hold span on the holder's track: acquire opens, release closes.
        std::snprintf(span_id, sizeof(span_id), "%shold.t%d.s%d", sp, e.arg0, e.arg1);
        std::snprintf(name, sizeof(name), "holds S%d", e.arg1);
        w.Async(e.type == TraceEventType::kSemAcquire ? "b" : "e", ts, e.arg0, name, "sem",
                span_id);
        break;
      }
      case TraceEventType::kSemAcquireBlock: {
        std::snprintf(span_id, sizeof(span_id), "%sblock.t%d.s%d", sp, e.arg0, e.arg1);
        std::snprintf(name, sizeof(name), "blocked on S%d", e.arg1);
        w.Async("b", ts, e.arg0, name, "semblock", span_id);
        int32_t* blocked = blocked_slot(e.arg0);
        if (blocked != nullptr) {
          *blocked = e.arg1;
        }
        break;
      }
      case TraceEventType::kSemCseEarlyPi:
        std::snprintf(name, sizeof(name), "CSE early PI (S%d, saved switch)", e.arg1);
        w.Instant(ts, e.arg0, name, "cse");
        break;
      case TraceEventType::kPiInherit: {
        // Arrow donor -> holder as a flow pair. The counter spans windows;
        // prefixed (string) ids keep cross-node arrows impossible even if a
        // future caller resets it.
        ++*flow_counter;
        char idnum[40];
        if (options.pid == 1) {
          std::snprintf(idnum, sizeof(idnum), ",\"id\":%" PRIu64, *flow_counter);
        } else {
          std::snprintf(idnum, sizeof(idnum), ",\"id\":\"%s%" PRIu64 "\"", sp, *flow_counter);
        }
        w.Open("s", ts, e.arg1);
        w.Field("name", "pi");
        w.Field("cat", "pi");
        w.Raw(idnum);
        w.Close();
        w.Open("f", ts, e.arg0);
        w.Field("name", "pi");
        w.Field("cat", "pi");
        w.Raw(",\"bp\":\"e\"");
        w.Raw(idnum);
        w.Close();
        break;
      }
      case TraceEventType::kPiRestore:
        std::snprintf(name, sizeof(name), "PI restore (S%d)", e.arg1);
        w.Instant(ts, e.arg0, name, "pi");
        break;
      case TraceEventType::kIrq:
        std::snprintf(name, sizeof(name), "irq %d", e.arg0);
        w.Instant(ts, 0, name, "irq");
        break;
      case TraceEventType::kMsgSend:
      case TraceEventType::kMsgRecv:
        std::snprintf(name, sizeof(name), "%s obj %d",
                      e.type == TraceEventType::kMsgSend ? "send" : "recv", e.arg1);
        w.Instant(ts, e.arg0, name, "ipc");
        break;
      case TraceEventType::kThreadExit:
        w.Instant(ts, e.arg0, "thread exit", "sched");
        break;
      case TraceEventType::kPiChainLimit:
        std::snprintf(name, sizeof(name), "PI chain limit (S%d)", e.arg1);
        w.Instant(ts, e.arg0, name, "pi");
        break;
      case TraceEventType::kHeadroomLow:
        std::snprintf(name, sizeof(name), "headroom low (slack %d us)", e.arg1);
        w.Instant(ts, e.arg0, name, "headroom");
        break;
      case TraceEventType::kChainEmit:
      case TraceEventType::kChainConsume: {
        // Flow arrow producer -> consumer. Emit and its consume(s) pair by
        // (origin, endpoint, emit-hop): the consume's hop is one past the
        // emit's, so it keys with hop - 1. ISR-context events (actor -1)
        // render on tid 0 alongside the irq instants.
        bool is_emit = e.type == TraceEventType::kChainEmit;
        int hop = ChainHopOf(e.arg2);
        int actor = ChainActorOf(e.arg2);
        int tid = actor >= 0 ? actor : 0;
        std::snprintf(span_id, sizeof(span_id), "%schain.o%u.h%d.e%d", sp,
                      static_cast<uint32_t>(e.arg0), is_emit ? hop : hop - 1, e.arg1);
        std::snprintf(name, sizeof(name), "chain %s:%d",
                      ChainEndpointKindToString(ChainEndpointKindOf(e.arg1)),
                      ChainEndpointChannel(e.arg1));
        w.Open(is_emit ? "s" : "f", ts, tid);
        w.Field("name", name);
        w.Field("cat", "chain");
        if (!is_emit) {
          w.Raw(",\"bp\":\"e\"");
        }
        w.Field("id", span_id);
        w.Close();
        break;
      }
      case TraceEventType::kTraceEpoch:
        std::snprintf(name, sizeof(name), "trace epoch %d", e.arg0);
        w.Instant(ts, 0, name, "trace");
        break;
      case TraceEventType::kOverheadSpan: {
        if (!options.overhead_slices) {
          break;
        }
        // Recorded at the *end* of the charge; the slice covers the advance.
        double dur_us = static_cast<double>(e.arg1) / 1e3;
        int tid = e.arg2 > 0 ? e.arg2 - 1 : 0;
        std::snprintf(name, sizeof(name), "overhead: %s (core %d)",
                      CycleBucketToString(static_cast<CycleBucket>(OverheadSpanBucket(e.arg0))),
                      OverheadSpanCore(e.arg0));
        w.Open("X", ts - dur_us, tid);
        w.Field("name", name);
        w.Field("cat", "overhead");
        w.Dur(dur_us);
        w.Close();
        break;
      }
      case TraceEventType::kThreadBlock:
      case TraceEventType::kThreadReady: {
        // Wait spans (block -> ready) per reason. Semaphore waits already
        // render as "blocked on S<n>" spans from kSemAcquireBlock, so those
        // are skipped here rather than drawn twice.
        auto reason = static_cast<BlockReason>(e.arg1);
        if (reason == BlockReason::kWaitSem || reason == BlockReason::kNone) {
          break;
        }
        std::snprintf(span_id, sizeof(span_id), "%swait.t%d.r%d", sp, e.arg0, e.arg1);
        std::snprintf(name, sizeof(name), "wait: %s", BlockReasonToString(reason));
        w.Async(e.type == TraceEventType::kThreadBlock ? "b" : "e", ts, e.arg0, name, "wait",
                span_id);
        break;
      }
    }
  }

  // Cycle-attribution counter tracks: one stacked "C" event per sample on
  // the "cycles (us/interval)" track, plus a headroom-low rate track.
  for (const PerfettoCounterSample& s : options.counter_samples) {
    double ts = TsUs(s.time);
    w.Open("C", ts, 0);
    w.Field("name", "cycles (us/interval)");
    w.Raw(",\"args\":{");
    bool first = true;
    for (int b = 0; b < kNumCycleBuckets; ++b) {
      char field[64];
      std::snprintf(field, sizeof(field), "%s\"%s\":%.3f", first ? "" : ",",
                    CycleBucketToString(static_cast<CycleBucket>(b)),
                    static_cast<double>(s.cycles.buckets[b].nanos()) / 1e3);
      w.Raw(field);
      first = false;
    }
    w.Raw("}");
    w.Close();

    w.Open("C", ts, 0);
    w.Field("name", "headroom_low (events/interval)");
    char field[64];
    std::snprintf(field, sizeof(field), ",\"args\":{\"events\":%" PRIu64 "}",
                  s.headroom_low_events);
    w.Raw(field);
    w.Close();
  }

  for (const PerfettoInstantMarker& m : options.instants) {
    w.Instant(TsUs(m.time), 0, m.name.c_str(), m.category);
  }

  for (const PerfettoAnnotationSlice& a : options.annotations) {
    w.Open("X", TsUs(a.begin), a.thread_id);
    w.Field("name", a.name.c_str());
    w.Field("cat", a.category);
    w.Dur(static_cast<double>(a.duration.nanos()) / 1e3);
    w.Close();
  }

  // Close still-open running slices and block spans at the window edge so
  // the viewer does not render them as zero-length.
  if (count > 0) {
    double end_ts = TsUs(events[count - 1].time);
    for (size_t id = 0; id < running.size(); ++id) {
      if (running[id].open && end_ts > TsUs(running[id].since)) {
        w.Open("X", TsUs(running[id].since), static_cast<int>(id));
        w.Field("name", "running");
        w.Field("cat", "sched");
        w.Dur(end_ts - TsUs(running[id].since));
        w.Close();
      }
    }
  }
}

}  // namespace

size_t ExportPerfettoJson(const TraceEvent* events, size_t count,
                          const PerfettoExportOptions& options, std::FILE* out) {
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", out);
  EventWriter w(out);
  uint64_t flow_counter = 0;
  ExportWindow(w, events, count, options, &flow_counter);
  std::fputs("\n]}\n", out);
  return w.count();
}

size_t ExportPerfettoJsonMulti(const std::vector<PerfettoWindow>& windows, std::FILE* out) {
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", out);
  EventWriter w(out);
  uint64_t flow_counter = 0;
  for (const PerfettoWindow& window : windows) {
    ExportWindow(w, window.events, window.count, window.options, &flow_counter);
  }
  std::fputs("\n]}\n", out);
  return w.count();
}

std::vector<std::string> KernelThreadNames(const Kernel& kernel) {
  std::vector<std::string> names;
  names.reserve(kernel.thread_count());
  for (size_t i = 0; i < kernel.thread_count(); ++i) {
    const Tcb& t = kernel.thread(ThreadId(static_cast<int>(i)));
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%s/%d", t.name, t.id.value);
    names.push_back(buf);
  }
  return names;
}

size_t ExportPerfettoJson(const Kernel& kernel, std::FILE* out) {
  const TraceSink& sink = kernel.trace();
  std::vector<TraceEvent> events;
  events.reserve(sink.size());
  for (size_t i = 0; i < sink.size(); ++i) {
    events.push_back(sink.at(i));
  }
  PerfettoExportOptions options;
  options.thread_names = KernelThreadNames(kernel);
  options.dropped_events = sink.dropped();
  if (const StatsSampler* sampler = kernel.stats_sampler()) {
    options.counter_samples.reserve(sampler->size());
    for (size_t i = 0; i < sampler->size(); ++i) {
      const StatsDelta& d = sampler->at(i);
      PerfettoCounterSample s;
      s.time = d.time;
      s.cycles = d.cycles;
      s.headroom_low_events = d.headroom_low_events;
      options.counter_samples.push_back(s);
    }
  }
  return ExportPerfettoJson(events.data(), events.size(), options, out);
}

}  // namespace obs
}  // namespace emeralds
