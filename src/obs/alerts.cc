#include "src/obs/alerts.h"

#include <algorithm>
#include <map>

#include "src/obs/json_writer.h"

namespace emeralds {
namespace obs {

uint64_t RobustMedian(std::vector<uint64_t> values) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  return values[(values.size() - 1) / 2];
}

uint64_t RobustMad(const std::vector<uint64_t>& values, uint64_t median) {
  std::vector<uint64_t> deviations;
  deviations.reserve(values.size());
  for (uint64_t v : values) {
    deviations.push_back(v > median ? v - median : median - v);
  }
  return RobustMedian(std::move(deviations));
}

uint64_t RobustOutlierThreshold(uint64_t median, uint64_t mad) {
  return std::max(5 * mad, median / 4);
}

bool IsRobustOutlier(uint64_t value, uint64_t median, uint64_t mad) {
  return value > median && (value - median) > RobustOutlierThreshold(median, mad);
}

const char* AlertRuleName(AlertRuleKind kind) {
  switch (kind) {
    case AlertRuleKind::kDeadlineMissBurn:
      return "deadline_miss_burn";
    case AlertRuleKind::kChainOverrunBurn:
      return "chain_overrun_burn";
    case AlertRuleKind::kHeadroomMin:
      return "headroom_min";
    case AlertRuleKind::kTraceDrops:
      return "trace_drops";
    case AlertRuleKind::kIpiShare:
      return "ipi_share";
    case AlertRuleKind::kFleetOutlier:
      return "fleet_outlier";
  }
  return "?";
}

void SortAlertEvents(std::vector<AlertEvent>* events) {
  std::sort(events->begin(), events->end(), [](const AlertEvent& a, const AlertEvent& b) {
    if (a.window != b.window) {
      return a.window < b.window;
    }
    if (a.rule != b.rule) {
      return static_cast<int>(a.rule) < static_cast<int>(b.rule);
    }
    if (a.node != b.node) {
      return a.node < b.node;
    }
    return a.firing && !b.firing;  // a fire sorts before a resolve (distinct rules only)
  });
}

namespace {

// bad/total burn >= burn_threshold x budget, by 128-bit cross-multiplication.
bool BurnOver(uint64_t bad, uint64_t total, const BurnRule& rule) {
  if (total == 0) {
    return false;  // no events, no evidence
  }
  return static_cast<unsigned __int128>(bad) * 1000000 >=
         static_cast<unsigned __int128>(total) * rule.budget_ppm * rule.burn_threshold;
}

// Sum of the last `n` (bad, total) pairs.
std::pair<uint64_t, uint64_t> TailSum(const std::vector<std::pair<uint64_t, uint64_t>>& h,
                                      int n) {
  uint64_t bad = 0;
  uint64_t total = 0;
  size_t count = n < 0 ? 0 : static_cast<size_t>(n);
  size_t begin = h.size() > count ? h.size() - count : 0;
  for (size_t i = begin; i < h.size(); ++i) {
    bad += h[i].first;
    total += h[i].second;
  }
  return {bad, total};
}

AlertEvent MakeEvent(AlertRuleKind rule, int node, const TelemetryWindow& w, bool firing,
                     uint64_t value, uint64_t total) {
  AlertEvent e;
  e.rule = rule;
  e.node = node;
  e.window = w.index;
  e.time = w.end;
  e.firing = firing;
  e.value = value;
  e.total = total;
  return e;
}

}  // namespace

AlertEngine::AlertEngine(const AlertConfig& config) : config_(config) {
  if (config_.fast_windows < 1) {
    config_.fast_windows = 1;
  }
  if (config_.slow_windows < config_.fast_windows) {
    config_.slow_windows = config_.fast_windows;
  }
}

void AlertEngine::ObserveBurn(const BurnRule& rule, AlertRuleKind kind, uint64_t bad,
                              uint64_t total, const TelemetryWindow& w, int node,
                              BurnState* state, std::vector<AlertEvent>* out) {
  if (!rule.enabled) {
    return;
  }
  state->history.emplace_back(bad, total);
  if (state->history.size() > static_cast<size_t>(config_.slow_windows)) {
    state->history.erase(state->history.begin());
  }
  auto fast = TailSum(state->history, config_.fast_windows);
  auto slow = TailSum(state->history, config_.slow_windows);
  if (!state->firing) {
    // Partial history (fewer than slow_windows so far) burns over min(N,
    // available) windows — bounded detection latency from window zero, with
    // the min_total floor keeping tiny-sample ratios quiet.
    if (slow.second >= rule.min_total && BurnOver(fast.first, fast.second, rule) &&
        BurnOver(slow.first, slow.second, rule)) {
      state->firing = true;
      out->push_back(MakeEvent(kind, node, w, true, fast.first, fast.second));
    }
  } else if (fast.second > 0 && !BurnOver(fast.first, fast.second, rule)) {
    state->firing = false;
    out->push_back(MakeEvent(kind, node, w, false, fast.first, fast.second));
  }
}

void AlertEngine::Observe(const TelemetryWindow& w, int node, std::vector<AlertEvent>* out) {
  ObserveBurn(config_.miss_burn, AlertRuleKind::kDeadlineMissBurn, w.deadline_misses,
              w.jobs_completed, w, node, &miss_, out);
  ObserveBurn(config_.chain_burn, AlertRuleKind::kChainOverrunBurn, w.chain_e2e_overruns,
              w.chain_e2e_completed, w, node, &chain_, out);

  if (config_.headroom_rule && w.headroom.count() > 0) {
    // The carried min is the cumulative minimum up to this window — a
    // conservative bound that never un-fires earlier than the true
    // per-window minimum would.
    bool low = w.headroom.min() < config_.headroom_min;
    if (low && !headroom_firing_) {
      headroom_firing_ = true;
      out->push_back(MakeEvent(AlertRuleKind::kHeadroomMin, node, w, true,
                               static_cast<uint64_t>(w.headroom_low_events), 0));
    } else if (!low && headroom_firing_) {
      headroom_firing_ = false;
      out->push_back(MakeEvent(AlertRuleKind::kHeadroomMin, node, w, false, 0, 0));
    }
  }

  if (config_.trace_drop_rule) {
    bool over = w.trace_dropped > config_.trace_drop_limit;
    if (over && !trace_firing_) {
      trace_firing_ = true;
      out->push_back(MakeEvent(AlertRuleKind::kTraceDrops, node, w, true, w.trace_dropped, 0));
    } else if (!over && trace_firing_) {
      trace_firing_ = false;
      out->push_back(MakeEvent(AlertRuleKind::kTraceDrops, node, w, false, w.trace_dropped, 0));
    }
  }

  if (config_.ipi_share_rule) {
    uint64_t ipi = static_cast<uint64_t>(w.cycles.buckets[static_cast<int>(CycleBucket::kIpi)]
                                             .nanos());
    uint64_t all = static_cast<uint64_t>(w.cycles.total().nanos());
    bool over = all > 0 && static_cast<unsigned __int128>(ipi) * 1000000 >
                               static_cast<unsigned __int128>(all) * config_.ipi_share_ppm;
    if (over && !ipi_firing_) {
      ipi_firing_ = true;
      out->push_back(MakeEvent(AlertRuleKind::kIpiShare, node, w, true, ipi, all));
    } else if (!over && ipi_firing_) {
      ipi_firing_ = false;
      out->push_back(MakeEvent(AlertRuleKind::kIpiShare, node, w, false, ipi, all));
    }
  }
}

void EvaluateFleetOutlierAlerts(
    const std::vector<const std::vector<TelemetryWindow>*>& per_node,
    const AlertConfig& config, std::vector<AlertEvent>* out) {
  if (!config.fleet_outlier_rule || per_node.empty()) {
    return;
  }
  // Index the series: window index -> (node -> window).
  std::map<int64_t, std::vector<const TelemetryWindow*>> by_index;
  for (size_t node = 0; node < per_node.size(); ++node) {
    if (per_node[node] == nullptr) {
      continue;
    }
    for (const TelemetryWindow& w : *per_node[node]) {
      auto& row = by_index[w.index];
      row.resize(per_node.size(), nullptr);
      row[node] = &w;
    }
  }
  std::vector<bool> firing(per_node.size(), false);
  for (auto& kv : by_index) {
    std::vector<uint64_t> values(per_node.size(), 0);
    Instant end;
    for (size_t node = 0; node < per_node.size(); ++node) {
      const TelemetryWindow* w =
          node < kv.second.size() ? kv.second[node] : nullptr;
      if (w != nullptr) {
        values[node] = w->deadline_misses;
        end = w->end;
      }
    }
    uint64_t median = RobustMedian(values);
    uint64_t mad = RobustMad(values, median);
    for (size_t node = 0; node < per_node.size(); ++node) {
      bool outlier = values[node] >= config.outlier_floor &&
                     IsRobustOutlier(values[node], median, mad);
      if (outlier == firing[node]) {
        continue;
      }
      firing[node] = outlier;
      AlertEvent e;
      e.rule = AlertRuleKind::kFleetOutlier;
      e.node = static_cast<int>(node);
      e.window = kv.first;
      e.time = end;
      e.firing = outlier;
      e.value = values[node];
      e.total = median;
      out->push_back(e);
    }
  }
  SortAlertEvents(out);
}

void AppendAlertsSection(Json& j, const std::vector<AlertEvent>& events,
                         const AlertConfig& config) {
  j.Key("alerts");
  j.OpenObject();
  j.Key("config");
  j.OpenObject();
  j.Int("fast_windows", config.fast_windows);
  j.Int("slow_windows", config.slow_windows);
  j.Int("miss_budget_ppm", static_cast<int64_t>(config.miss_burn.budget_ppm));
  j.Int("miss_burn_threshold", config.miss_burn.burn_threshold);
  j.Int("chain_budget_ppm", static_cast<int64_t>(config.chain_burn.budget_ppm));
  j.Int("chain_burn_threshold", config.chain_burn.burn_threshold);
  j.Int("outlier_floor", static_cast<int64_t>(config.outlier_floor));
  j.CloseObject();
  uint64_t fired = 0;
  for (const AlertEvent& e : events) {
    if (e.firing) {
      ++fired;
    }
  }
  j.Int("events", static_cast<int64_t>(events.size()));
  j.Int("fired", static_cast<int64_t>(fired));
  j.Key("stream");
  j.OpenArray();
  for (const AlertEvent& e : events) {
    j.OpenObject();
    j.String("rule", AlertRuleName(e.rule));
    j.Int("node", e.node);
    j.Int("window", e.window);
    j.Int("time_us", e.time.micros());
    j.String("state", e.firing ? "firing" : "resolved");
    j.Int("value", static_cast<int64_t>(e.value));
    j.Int("total", static_cast<int64_t>(e.total));
    j.CloseObject();
  }
  j.CloseArray();
  j.CloseObject();
}

}  // namespace obs
}  // namespace emeralds
