#include "src/obs/chains.h"

#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "src/hal/trace.h"
#include "src/obs/json_writer.h"

namespace emeralds {
namespace obs {
namespace {

std::string Describe(const char* fmt, long long a, long long b, long long c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b, c);
  return buf;
}

// One in-flight traversal of a declared chain by a single token origin.
// Stage k of an instance whose head emit carried hop `base_hop` is emitted
// at hop base_hop + k and consumed at hop base_hop + k + 1; enforcing the
// hops exactly keeps instances of different origins (and re-emits of the
// same origin elsewhere) from interleaving.
struct Instance {
  uint16_t base_hop = 0;
  size_t next_stage = 0;
  bool awaiting_consume = false;  // else awaiting the next stage's emit
  int carrier_tid = -1;           // consumer of the previous stage
  std::vector<Instant> stage_emit;
  std::vector<Instant> stage_consume;
};

struct SpecState {
  std::map<uint32_t, Instance> instances;  // keyed by token origin
};

void CompleteInstance(ChainReport& report, uint32_t origin, const Instance& inst) {
  const size_t stages = report.hops.size();
  ++report.completed;
  Duration e2e = inst.stage_consume[stages - 1] - inst.stage_emit[0];
  report.e2e.Add(e2e);
  const bool overrun = report.deadline.nanos() > 0 && e2e > report.deadline;
  if (overrun) {
    ++report.overruns;
  }
  ChainOverrunRecord rec;
  if (overrun) {
    rec.origin = origin;
    rec.start = inst.stage_emit[0];
    rec.e2e = e2e;
  }
  for (size_t k = 0; k < stages; ++k) {
    Duration queue = inst.stage_consume[k] - inst.stage_emit[k];
    report.hops[k].queue.Add(queue);
    if (overrun) {
      rec.hop_queue_ns.push_back(queue.nanos());
    }
    if (k + 1 < stages) {
      Duration exec = inst.stage_emit[k + 1] - inst.stage_consume[k];
      report.hops[k].exec.Add(exec);
      if (overrun) {
        rec.hop_exec_ns.push_back(exec.nanos());
      }
    }
  }
  if (overrun) {
    if (report.overrun_records.size() < kMaxChainOverrunRecords) {
      report.overrun_records.push_back(std::move(rec));
    } else {
      ++report.overrun_records_dropped;
    }
  }
}

}  // namespace

const char* ChainViolationKindToString(ChainViolationKind kind) {
  switch (kind) {
    case ChainViolationKind::kOrphanConsume:
      return "orphan_consume";
    case ChainViolationKind::kOriginReuse:
      return "origin_reuse";
    case ChainViolationKind::kMalformedToken:
      return "malformed_token";
  }
  return "?";
}

ChainAnalysis AnalyzeChains(const TraceEvent* events, size_t count, uint64_t dropped_events,
                            const std::vector<ResolvedChain>& specs) {
  ChainAnalysis out;

  // A kTraceEpoch marker means the sink was Reset: dropped() restarted from
  // zero but tokens banked before the reset can surface afterwards, so the
  // window is not the whole run even when dropped_events == 0.
  bool epoch_seen = false;
  for (size_t i = 0; i < count; ++i) {
    if (events[i].type == TraceEventType::kTraceEpoch) {
      epoch_seen = true;
      break;
    }
  }
  out.complete_window = dropped_events == 0 && !epoch_seen;

  std::vector<ChainReport> reports;
  std::vector<SpecState> states(specs.size());
  reports.reserve(specs.size());
  for (const ResolvedChain& spec : specs) {
    ChainReport r;
    r.name = spec.name;
    r.deadline = spec.deadline;
    r.resolved = spec.resolved;
    for (const ResolvedChainStage& st : spec.stages) {
      ChainHopStats h;
      h.endpoint = st.endpoint;
      h.consumer_tid = st.consumer_tid;
      r.hops.push_back(std::move(h));
    }
    reports.push_back(std::move(r));
  }

  // Conservation bookkeeping: emits seen (and whether each was consumed at
  // least once), keyed exactly — multi-consume of one emit is legitimate
  // (state-message re-reads, condvar broadcast).
  std::map<std::tuple<uint32_t, int32_t, uint16_t>, bool> emits_seen;
  std::set<uint32_t> minted;

  auto violate = [&](ChainViolationKind kind, size_t index, std::string detail) {
    out.violations.push_back(ChainViolation{kind, index, std::move(detail)});
  };

  for (size_t i = 0; i < count; ++i) {
    const TraceEvent& e = events[i];
    if (e.type != TraceEventType::kChainEmit && e.type != TraceEventType::kChainConsume) {
      continue;
    }
    const uint32_t origin = static_cast<uint32_t>(e.arg0);
    const int32_t endpoint = e.arg1;
    const uint16_t hop = ChainHopOf(e.arg2);
    const int actor = ChainActorOf(e.arg2);

    if (origin == 0 || hop > kMaxChainHops) {
      violate(ChainViolationKind::kMalformedToken, i,
              Describe("origin %lld hop %lld at endpoint %lld", origin, hop, endpoint));
      continue;
    }

    if (e.type == TraceEventType::kChainEmit) {
      ++out.chain_emits;
      if (hop == 0) {
        if (!minted.insert(origin).second) {
          violate(ChainViolationKind::kOriginReuse, i,
                  Describe("origin %lld minted again at endpoint %lld (hop %lld)",
                           origin, endpoint, hop));
        } else {
          ++out.origins_minted;
        }
      }
      emits_seen.emplace(std::make_tuple(origin, endpoint, hop), false);

      for (size_t s = 0; s < specs.size(); ++s) {
        if (!specs[s].resolved || specs[s].stages.empty()) {
          continue;
        }
        auto it = states[s].instances.find(origin);
        if (it == states[s].instances.end()) {
          if (endpoint == specs[s].stages[0].endpoint) {
            Instance inst;
            inst.base_hop = hop;
            inst.next_stage = 0;
            inst.awaiting_consume = true;
            inst.stage_emit.resize(specs[s].stages.size());
            inst.stage_consume.resize(specs[s].stages.size());
            inst.stage_emit[0] = e.time;
            states[s].instances.emplace(origin, std::move(inst));
          }
        } else {
          Instance& inst = it->second;
          if (!inst.awaiting_consume &&
              endpoint == specs[s].stages[inst.next_stage].endpoint &&
              hop == inst.base_hop + inst.next_stage && actor == inst.carrier_tid) {
            inst.stage_emit[inst.next_stage] = e.time;
            inst.awaiting_consume = true;
          }
        }
      }
      continue;
    }

    // kChainConsume
    ++out.chain_consumes;
    if (hop == 0) {
      violate(ChainViolationKind::kMalformedToken, i,
              Describe("consume at hop 0 (origin %lld, endpoint %lld)", origin, endpoint, 0));
      continue;
    }
    auto emit_it =
        emits_seen.find(std::make_tuple(origin, endpoint, static_cast<uint16_t>(hop - 1)));
    if (emit_it == emits_seen.end()) {
      if (hop == kMaxChainHops) {
        // At the hop ceiling the producing side drops the token instead of
        // advancing it (ChainConsume's saturation path), so a capped consume
        // legitimately has no in-window emit even in a complete window.
        // Degrade to a counted orphan rather than a conservation violation.
        ++out.saturated_hops;
      } else if (out.complete_window) {
        violate(ChainViolationKind::kOrphanConsume, i,
                Describe("consume of origin %lld hop %lld at endpoint %lld with no matching emit",
                         origin, hop, endpoint));
      } else {
        ++out.orphan_hops;  // the emit predates the retained window
      }
    } else {
      emit_it->second = true;
    }

    for (size_t s = 0; s < specs.size(); ++s) {
      if (!specs[s].resolved || specs[s].stages.empty()) {
        continue;
      }
      auto it = states[s].instances.find(origin);
      if (it == states[s].instances.end()) {
        continue;
      }
      Instance& inst = it->second;
      const ResolvedChainStage& stage = specs[s].stages[inst.next_stage];
      if (!inst.awaiting_consume || endpoint != stage.endpoint ||
          hop != inst.base_hop + inst.next_stage + 1 ||
          (stage.consumer_tid >= 0 && actor != stage.consumer_tid)) {
        continue;
      }
      inst.stage_consume[inst.next_stage] = e.time;
      inst.carrier_tid = actor;
      if (inst.next_stage + 1 == specs[s].stages.size()) {
        CompleteInstance(reports[s], origin, inst);
        states[s].instances.erase(it);
      } else {
        ++inst.next_stage;
        inst.awaiting_consume = false;
      }
    }
  }

  for (size_t s = 0; s < specs.size(); ++s) {
    reports[s].incomplete = states[s].instances.size();
  }
  for (const auto& entry : emits_seen) {
    if (!entry.second) {
      ++out.unconsumed_emits;
    }
  }
  out.chains = std::move(reports);
  return out;
}

ChainAnalysis AnalyzeChains(const TraceSink& sink, const std::vector<ResolvedChain>& specs) {
  std::vector<TraceEvent> events;
  events.reserve(sink.size());
  for (size_t i = 0; i < sink.size(); ++i) {
    events.push_back(sink.at(i));
  }
  return AnalyzeChains(events.data(), events.size(), sink.dropped(), specs);
}

namespace {

void AppendChainHistogram(Json& j, const char* name, const Log2Histogram& h) {
  j.Key(name);
  j.OpenObject();
  j.Int("count", static_cast<int64_t>(h.count()));
  j.Number("min_us", h.count() > 0 ? h.min().micros_f() : 0.0);
  j.Number("max_us", h.count() > 0 ? h.max().micros_f() : 0.0);
  j.Number("mean_us", h.mean().micros_f());
  j.Number("p99_us", h.ApproxPercentile(0.99).micros_f());
  j.Number("total_us", h.total().micros_f());
  j.CloseObject();
}

}  // namespace

void AppendChainsSection(Json& j, const ChainAnalysis& a) {
  j.OpenObject();
  j.Bool("complete_window", a.complete_window);
  j.Int("chain_emits", static_cast<int64_t>(a.chain_emits));
  j.Int("chain_consumes", static_cast<int64_t>(a.chain_consumes));
  j.Int("origins_minted", static_cast<int64_t>(a.origins_minted));
  j.Int("orphan_hops", static_cast<int64_t>(a.orphan_hops));
  j.Int("saturated_hops", static_cast<int64_t>(a.saturated_hops));
  j.Int("unconsumed_emits", static_cast<int64_t>(a.unconsumed_emits));
  j.Key("chains");
  j.OpenArray();
  for (const ChainReport& c : a.chains) {
    j.OpenObject();
    j.String("name", c.name);
    j.Bool("resolved", c.resolved);
    j.Number("deadline_us", c.deadline.micros_f());
    j.Int("completed", static_cast<int64_t>(c.completed));
    j.Int("incomplete", static_cast<int64_t>(c.incomplete));
    j.Int("overruns", static_cast<int64_t>(c.overruns));
    AppendChainHistogram(j, "e2e", c.e2e);
    j.Key("hops");
    j.OpenArray();
    for (const ChainHopStats& h : c.hops) {
      j.OpenObject();
      j.String("endpoint_kind",
               ChainEndpointKindToString(ChainEndpointKindOf(h.endpoint)));
      j.Int("endpoint_id", ChainEndpointChannel(h.endpoint));
      j.Int("consumer_tid", h.consumer_tid);
      AppendChainHistogram(j, "queue", h.queue);
      AppendChainHistogram(j, "exec", h.exec);
      j.CloseObject();
    }
    j.CloseArray();
    j.CloseObject();
  }
  j.CloseArray();
  j.Key("violations");
  j.OpenArray();
  for (const ChainViolation& v : a.violations) {
    j.OpenObject();
    j.String("kind", ChainViolationKindToString(v.kind));
    j.Int("event_index", static_cast<int64_t>(v.event_index));
    j.String("detail", v.detail);
    j.CloseObject();
  }
  j.CloseArray();
  j.CloseObject();
}

std::string BuildChainsReport(const std::string& label, const ChainAnalysis& analysis) {
  Json j;
  j.OpenObject();
  j.String("schema", kObsChainsSchema);
  j.String("label", label);
  j.Key("report");
  AppendChainsSection(j, analysis);
  j.CloseObject();
  return j.str() + "\n";
}

bool WriteChainsReportFile(const std::string& path, const std::string& label,
                           const ChainAnalysis& analysis) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string text = BuildChainsReport(label, analysis);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace obs
}  // namespace emeralds
