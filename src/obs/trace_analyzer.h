// Trace replay: derived per-task metrics and invariant checks.
//
// The analyzer consumes the TraceSink event stream (live, or re-imported from
// the CSV export) and derives what the raw ring does not store directly:
// per-task response-time and blocking-time histograms, preemption counts, PI
// chain depth, CSE savings — the quantities EMERALDS' evaluation is about —
// plus structural invariant checks that catch both kernel bugs and corrupted
// trace files. trace_inspect, the obs run report, and the obs_smoke CI label
// are built on it.

#ifndef SRC_OBS_TRACE_ANALYZER_H_
#define SRC_OBS_TRACE_ANALYZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hal/trace.h"
#include "src/obs/histogram.h"

namespace emeralds {

class TraceSink;

namespace obs {

// Structural trace invariants. The analyzer is truncation-aware: when
// `dropped_events` > 0 the retained window is a suffix of the run, so checks
// that need pre-window state (switch pairing before the first switch,
// release/complete pairing for jobs begun before the window) are suppressed
// until the stream itself establishes the state.
enum class InvariantKind {
  // Timestamps regressed. kJobRelease events are exempt: they carry the
  // *nominal* release instant, which the kernel records retroactively when a
  // job starts late after an overrun.
  kNonMonotoneTime,
  // A context switch's outgoing thread differs from the thread the previous
  // switch ran (in/out pairing broken).
  kSwitchPairing,
  // A thread with an unresolved kSemAcquireBlock was switched in, completed
  // a job, or blocked again — i.e. it ran while the trace says it was
  // blocked. This is how "every kSemAcquireBlock is eventually resolved"
  // fails observably inside a finite window.
  kBlockedThreadRan,
  // kJobComplete for a job number with no preceding kJobRelease.
  kCompleteWithoutRelease,
  // Per-thread job numbers in kJobRelease did not increase.
  kJobNumberRegression,
};

const char* InvariantKindToString(InvariantKind kind);

struct TraceViolation {
  InvariantKind kind;
  size_t event_index;  // position in the analyzed window
  std::string detail;
};

// Per-thread derived metrics. `preemptions` counts switch-outs of a thread
// that still had an open job and had not blocked/completed/exited at that
// instant — exact for taskset_runner-style bodies (Compute + semaphores +
// WaitNextPeriod); a mid-job Sleep() is indistinguishable from a preemption
// in the event stream and counts as one.
struct TaskMetrics {
  int thread_id = -1;
  bool seen = false;
  uint64_t releases = 0;
  uint64_t completes = 0;
  uint64_t deadline_misses = 0;
  uint64_t switches_in = 0;
  uint64_t preemptions = 0;
  uint64_t sem_acquires = 0;
  uint64_t sem_blocks = 0;
  uint64_t cse_early_pi = 0;
  uint64_t pi_donated = 0;   // kPiInherit events with this thread as donor
  uint64_t pi_received = 0;  // kPiInherit events with this thread as holder
  uint64_t headroom_low = 0; // kHeadroomLow instants for this thread
  int max_pi_depth = 0;      // deepest inheritance chain ending at this thread
  Duration run_time;         // switched-in time inside the window
  Log2Histogram response;    // job release -> complete
  Log2Histogram blocking;    // sem acquire-block -> resolving acquire
};

struct TraceAnalysis {
  std::vector<TaskMetrics> tasks;  // indexed by thread id; check `seen`

  // Stream-wide counters. With dropped_events == 0 these reconcile exactly
  // with the kernel's KernelStats (context_switches, deadline_misses, ...).
  uint64_t context_switches = 0;
  uint64_t deadline_misses = 0;
  uint64_t jobs_released = 0;
  uint64_t jobs_completed = 0;
  uint64_t sem_acquires = 0;
  uint64_t sem_blocks = 0;
  uint64_t msg_sends = 0;  // kMsgSend: mailbox sends + state-message writes
  uint64_t msg_recvs = 0;  // kMsgRecv: mailbox receives + state-message reads
  uint64_t cse_early_pi = 0;
  uint64_t pi_chain_limit = 0;  // kPiChainLimit instants (refused deep acquires)
  uint64_t headroom_low = 0;    // kHeadroomLow instants (predicted tight slack)
  uint64_t chain_emits = 0;     // kChainEmit events (causal token emissions)
  uint64_t chain_consumes = 0;  // kChainConsume events (causal token pickups)
  uint64_t trace_epochs = 0;    // kTraceEpoch markers (sink resets)
  uint64_t overhead_spans = 0;  // kOverheadSpan events (charged kernel time)
  uint64_t thread_blocks = 0;   // kThreadBlock events (non-running waits)
  uint64_t thread_readies = 0;  // kThreadReady events (wait resolved)
  int max_pi_chain_depth = 0;
  // Acquire-blocks still unresolved when the window ends. Not a violation:
  // a run cut at a time bound legitimately ends with blocked threads.
  uint64_t unresolved_blocks_at_end = 0;

  uint64_t dropped_events = 0;  // echoed from the input
  std::vector<TraceViolation> violations;

  bool ok() const { return violations.empty(); }
  const TaskMetrics* task(int thread_id) const {
    if (thread_id < 0 || static_cast<size_t>(thread_id) >= tasks.size() ||
        !tasks[thread_id].seen) {
      return nullptr;
    }
    return &tasks[thread_id];
  }
};

// Replays `events[0..count)` (oldest first). `dropped_events` is the number
// of events lost ahead of the window (TraceSink::dropped()).
TraceAnalysis AnalyzeTrace(const TraceEvent* events, size_t count, uint64_t dropped_events);

// Convenience overload over a live sink's retained window.
TraceAnalysis AnalyzeTrace(const TraceSink& sink);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_TRACE_ANALYZER_H_
