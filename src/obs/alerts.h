// Deterministic per-window alerting over the streaming telemetry plane.
//
// Rules are evaluated once per TelemetryWindow, in window order, with pure
// integer arithmetic — the firing/resolved event stream is an exact function
// of the window series, so it is bit-identical across worker counts and
// repeat runs (the fleet determinism tests lock this down).
//
// The SLO rules use the dual-window burn-rate form: an alert fires only when
// the error-budget burn exceeds the threshold over BOTH a fast window (react
// quickly) and a slow window (ignore single-window spikes), and resolves as
// soon as the fast window drops back under. Burn is compared by
// cross-multiplication in 128-bit integers: bad * 1e6 >= total * budget_ppm
// * burn_threshold — no floating point anywhere near the event stream.

#ifndef SRC_OBS_ALERTS_H_
#define SRC_OBS_ALERTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/obs/timeseries.h"

namespace emeralds {
namespace obs {

class Json;

// --- Robust statistics (shared with fleet triage) ---
//
// The PR 7 triage math, hoisted so both the post-mortem triage tables and
// the per-window fleet outlier rule use the identical definition.

// Lower-middle median; integer and order-stable. Takes a copy (sorts it).
uint64_t RobustMedian(std::vector<uint64_t> values);

// Median absolute deviation around `median`.
uint64_t RobustMad(const std::vector<uint64_t>& values, uint64_t median);

// Outlier cut: above the median by more than 5 MADs *and* more than a
// quarter of the median (the second guard keeps a perfectly uniform
// population, mad == 0, from flagging one-bucket jitter).
uint64_t RobustOutlierThreshold(uint64_t median, uint64_t mad);
bool IsRobustOutlier(uint64_t value, uint64_t median, uint64_t mad);

// --- Rule configuration ---

struct BurnRule {
  bool enabled = true;
  uint64_t budget_ppm = 10000;  // error budget: bad/total allowed, in ppm
  uint32_t burn_threshold = 10;  // fire at burn >= threshold x budget
  // Slow-window total floor: with only a handful of events the ratio is
  // noise (1 overrun of 2 completions is "50%"), so the rule stays quiet
  // until the slow window has seen at least this many.
  uint64_t min_total = 4;
};

struct AlertConfig {
  int fast_windows = 5;
  int slow_windows = 50;
  // Deadline-miss burn against jobs completed. A healthy fleet misses zero
  // deadlines, so any sustained burn is a real signal.
  BurnRule miss_burn{true, 10000, 10, 4};  // 1% budget, 10x burn => 10% miss rate
  // Chain e2e overrun burn against chains completed. Healthy fleets overrun
  // chain SLOs routinely (~11% in the committed baseline), so the budget is
  // wide: 5% budget at 10x burn fires only past a 50% overrun share.
  BurnRule chain_burn{true, 50000, 10, 16};
  // Threshold rules — opt-in (disabled by default).
  bool headroom_rule = false;
  Duration headroom_min;  // fire when a window's observed headroom min < this
  bool trace_drop_rule = false;
  uint64_t trace_drop_limit = 0;  // fire when window trace drops > limit
  bool ipi_share_rule = false;
  uint64_t ipi_share_ppm = 0;  // fire when kIpi share of window cycles > ppm
  // Fleet outlier rule: per window, a node whose deadline-miss count is a
  // robust outlier above the fleet median (and at least `outlier_floor`, so
  // a single stray miss over an all-zero fleet cannot fire) — the triage
  // math applied online.
  bool fleet_outlier_rule = true;
  uint64_t outlier_floor = 3;
};

// --- Events ---

enum class AlertRuleKind : int {
  kDeadlineMissBurn = 0,
  kChainOverrunBurn = 1,
  kHeadroomMin = 2,
  kTraceDrops = 3,
  kIpiShare = 4,
  kFleetOutlier = 5,
};
inline constexpr int kNumAlertRuleKinds = 6;

const char* AlertRuleName(AlertRuleKind kind);

struct AlertEvent {
  AlertRuleKind rule = AlertRuleKind::kDeadlineMissBurn;
  int node = -1;
  int64_t window = 0;
  Instant time;        // exact virtual timestamp: the window's upper edge
  bool firing = true;  // false: the alert resolved at this window
  // Rule-specific evidence: numerator/denominator for burn rules (bad,
  // total over the fast window), observed value (and 0) for threshold and
  // outlier rules.
  uint64_t value = 0;
  uint64_t total = 0;

  bool operator==(const AlertEvent& o) const {
    return rule == o.rule && node == o.node && window == o.window &&
           time == o.time && firing == o.firing && value == o.value && total == o.total;
  }
};

// Canonical order: (window, rule, node). Events from different nodes are
// produced independently; sorting makes the concatenated stream bit-stable.
void SortAlertEvents(std::vector<AlertEvent>* events);

// --- Node-local engine ---

// Feed windows in index order; node-local rules (burn + thresholds) append
// their fire/resolve events. Stateful: firing alerts persist across windows
// until resolved.
class AlertEngine {
 public:
  explicit AlertEngine(const AlertConfig& config);

  void Observe(const TelemetryWindow& w, int node, std::vector<AlertEvent>* out);

 private:
  struct BurnState {
    std::vector<std::pair<uint64_t, uint64_t>> history;  // (bad, total) per window
    bool firing = false;
  };

  void ObserveBurn(const BurnRule& rule, AlertRuleKind kind, uint64_t bad, uint64_t total,
                   const TelemetryWindow& w, int node, BurnState* state,
                   std::vector<AlertEvent>* out);

  AlertConfig config_;
  BurnState miss_;
  BurnState chain_;
  bool headroom_firing_ = false;
  bool trace_firing_ = false;
  bool ipi_firing_ = false;
};

// --- Fleet outlier rule ---

// Evaluates the cross-node outlier rule over per-node window series (indexed
// by node). For each window index present anywhere, a node whose
// deadline-miss count is a robust outlier fires; it resolves at the first
// later window where it is not. Events are appended in canonical order.
void EvaluateFleetOutlierAlerts(
    const std::vector<const std::vector<TelemetryWindow>*>& per_node,
    const AlertConfig& config, std::vector<AlertEvent>* out);

// JSON "alerts" section: rule config echo + the event stream.
void AppendAlertsSection(Json& j, const std::vector<AlertEvent>& events,
                         const AlertConfig& config);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_ALERTS_H_
