// Deadline-miss postmortem: exact lateness attribution per late job.
//
// For every job that missed its deadline inside the trace window, the engine
// replays the event stream once and decomposes the job's response time into
// an exactly-telescoping lateness ledger: carry-in from the previous job's
// overrun, timer-service release latency, preemption (attributed per
// preemptor thread), priority-inversion blocking (per lock), IRQ / IPI /
// timer-service / scheduler / syscall overhead (from kOverheadSpan events),
// voluntary self-suspension, and the job's own scheduled execution split
// against the headroom monitor's EWMA cost into expected vs. overrun.
//
// The hard invariant mirrors CheckCycleConservation: on a complete window
// the ledger components sum to `completion - release` to the tick, so
// `sum - deadline_budget == completion - deadline` exactly. Truncated
// windows (ring overflow, mid-run sink Reset, legacy imports) degrade to a
// counted `unattributed_ns` — never to a silently wrong ledger.
//
// Attribution is gap-based: between consecutive events every open job's
// elapsed time is classified by the victim's scheduler state (running /
// ready / blocked-and-why), with kOverheadSpan events carving the kernel's
// charged advances on the victim's core out of the gap. Without spans
// (KernelConfig::trace_overhead_spans = false, or a pre-span trace) the
// ledger still telescopes but overhead lands in own-execution / preemption.

#ifndef SRC_OBS_POSTMORTEM_H_
#define SRC_OBS_POSTMORTEM_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/hal/trace.h"
#include "src/obs/chains.h"

namespace emeralds {

class TraceSink;

namespace obs {

class Json;

inline constexpr const char* kObsPostmortemSchema = "emeralds.obs.postmortem/1";

// Where a late job's response time went. All fields are non-negative and
// partition the response exactly: sum_ns() == completion - release on a
// complete window (unattributed_ns absorbs truncation residue otherwise).
struct LatenessLedger {
  int64_t carry_in_ns = 0;         // previous job of this task overran past the release
  int64_t release_latency_ns = 0;  // release grid -> job actually begins being serviced
  int64_t preemption_ns = 0;       // ready, but another thread held the core
  int64_t lock_blocked_ns = 0;     // blocked on a semaphore (PI blocking)
  int64_t self_suspend_ns = 0;     // voluntary waits: sleep, mailbox, condvar, IRQ wait
  int64_t irq_ns = 0;              // interrupt prologue/epilogue on the victim's core
  int64_t ipi_ns = 0;              // cross-core wake IPIs on the victim's core
  int64_t timer_svc_ns = 0;        // software-timer dispatch on the victim's core
  int64_t sched_ns = 0;            // queue ops, CSD parsing, context switches
  int64_t syscall_ns = 0;          // traps, semaphore/PI/IPC bookkeeping, stats
  int64_t own_expected_ns = 0;     // scheduled execution within the EWMA cost
  int64_t own_overrun_ns = 0;      // scheduled execution past the EWMA cost
  int64_t unattributed_ns = 0;     // truncated-window residue (0 on complete windows)

  std::map<int32_t, int64_t> preemptor_ns;  // thread id -> share of preemption_ns
  std::map<int32_t, int64_t> lock_ns;       // semaphore id -> share of lock_blocked_ns

  int64_t sum_ns() const {
    return carry_in_ns + release_latency_ns + preemption_ns + lock_blocked_ns +
           self_suspend_ns + irq_ns + ipi_ns + timer_svc_ns + sched_ns + syscall_ns +
           own_expected_ns + own_overrun_ns + unattributed_ns;
  }
};

// One missed deadline, fully attributed.
struct JobPostmortem {
  int thread_id = -1;
  uint64_t job_number = 0;
  Instant release;     // nominal (grid) release
  Instant completion;
  bool has_deadline = true;       // false only on legacy traces (arg2 == 0)
  int64_t deadline_budget_ns = 0; // relative deadline (deadline - release)
  int64_t response_ns = 0;        // completion - release
  int64_t tardiness_ns = 0;       // completion - deadline (when has_deadline)
  bool conserved = false;         // ledger.sum_ns() == response_ns exactly
  std::string top_blame;          // largest ledger component, human-readable
  LatenessLedger ledger;
};

// Retained-record cap; ledgers past it still feed the blame totals and the
// conservation check, only the verbatim per-job record is dropped.
inline constexpr size_t kMaxJobPostmortems = 64;

// Mergeable per-node blame summary: integer sums keyed by stable kernel ids,
// so fleet merges are associative and bit-identical across worker counts.
struct BlameTotals {
  uint64_t misses_analyzed = 0;        // finalized missed jobs (complete ledgers)
  uint64_t conservation_failures = 0;  // ledgers that failed to telescope
  int64_t tardiness_ns = 0;            // summed over analyzed misses with deadlines
  int64_t unattributed_ns = 0;         // summed truncation residue
  std::map<int32_t, uint64_t> victim_misses;      // thread id -> analyzed misses
  std::map<int32_t, int64_t> victim_tardiness_ns; // thread id -> summed tardiness
  std::map<int32_t, int64_t> preemptor_ns;        // thread id -> blamed preemption
  std::map<int32_t, int64_t> lock_ns;             // semaphore id -> blamed blocking

  void Merge(const BlameTotals& other);
  // FNV-1a over every counter and table entry in key order.
  uint64_t Digest() const;
  bool empty() const { return misses_analyzed == 0 && conservation_failures == 0; }
};

struct PostmortemAnalysis {
  // True when the ledger invariant cannot be exact: ring overflow ahead of
  // the window or a mid-run sink Reset (epoch marker).
  bool window_truncated = false;
  uint64_t misses_analyzed = 0;    // == blame.misses_analyzed
  uint64_t records_dropped = 0;    // misses past kMaxJobPostmortems
  uint64_t incomplete_misses = 0;  // missed jobs still open at the horizon
  uint64_t unmatched_misses = 0;   // kDeadlineMiss with no visible job (truncation)
  uint64_t deadline_unknown = 0;   // misses on legacy releases without a deadline
  uint64_t conservation_failures = 0;

  std::vector<JobPostmortem> misses;  // first kMaxJobPostmortems, stream order
  BlameTotals blame;

  bool ok() const { return conservation_failures == 0; }
};

// Replays `events[0..count)` (oldest first). `dropped_events` is
// TraceSink::dropped().
PostmortemAnalysis AnalyzePostmortem(const TraceEvent* events, size_t count,
                                     uint64_t dropped_events);

// Convenience overload over a live sink's retained window.
PostmortemAnalysis AnalyzePostmortem(const TraceSink& sink);

// Renders the analysis as a JSON object body (no surrounding document):
// embedded as the "postmortem" section of emeralds.obs.run/1 and of the
// standalone report below. `chains` (optional) contributes the chain-SLO
// overrun records with their per-hop telescoping breakdowns.
void AppendPostmortemSection(Json& j, const PostmortemAnalysis& analysis,
                             const ChainAnalysis* chains);

// Renders merged fleet blame tables (the BlameTotals alone, no per-job
// records) as a JSON object body.
void AppendBlameTotals(Json& j, const BlameTotals& blame);

// Standalone report document with schema "emeralds.obs.postmortem/1".
std::string BuildPostmortemReport(const std::string& label, const PostmortemAnalysis& analysis,
                                  const ChainAnalysis* chains);

// Human-readable rendering (trace_inspect --postmortem, fleet_inspect
// --postmortem=N drill-down).
void PrintPostmortem(std::FILE* out, const PostmortemAnalysis& analysis,
                     const ChainAnalysis* chains);

// One Perfetto annotation slice per recorded miss, spanning release ->
// completion on the victim's track and named with the top blame component.
struct PerfettoAnnotationSlice;
std::vector<PerfettoAnnotationSlice> PostmortemAnnotations(
    const PostmortemAnalysis& analysis);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_POSTMORTEM_H_
