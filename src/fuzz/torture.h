// Deterministic kernel torture harness.
//
// One RunTorture() call is one fully reproducible stress run: a seed drives
// every choice — topology (threads across DP/FP bands, nested semaphore
// chains, condvars, mailboxes, state messages with deliberately lapped
// readers, a user timer, an IRQ-driven driver thread), the per-thread
// operation schedules, the syscall-boundary fault plan (bad handles,
// permission denials, oversized payloads, short receive buffers), and the
// host-side injections between executive slices (IRQ storms, timer toggles,
// mid-run charge-accounting resets). Because the simulation itself is
// deterministic, the same (seed, op budget) always produces bit-identical
// traces; TortureResult::trace_digest makes that checkable in one compare.
//
// Six oracles run after every run:
//   1. obs::AnalyzeTrace over the retained trace must report zero structural
//      invariant violations (truncation-aware, so a deliberately tiny ring is
//      a fault case, not a false positive);
//   2. obs::ComputeReconciliation must agree with the kernel's own counters
//      whenever the trace was not truncated — and must *refuse* to check
//      (checked == false) when it was;
//   3. every injected fault must come back with exactly the status the
//      syscall contract promises (kBadHandle, kPermissionDenied, ...);
//   4. the cycle-attribution ledger must conserve: bucket sum == elapsed
//      virtual time since the charge epoch, exact to the tick, and no clock
//      advance may bypass the kernel's charging paths. Unlike oracle 2 this
//      is trace-independent, so it is enforced even on a truncated ring;
//   5. causal-token conservation: obs::AnalyzeChains over the declared chain
//      topology must report zero chain violations — every consumed token was
//      emitted, hop counts advance by exactly one, origins are minted once.
//      On a truncated ring orphan hops are tolerated (the emit predates the
//      window) but malformed tokens still fail;
//   6. conservation of lateness: obs::AnalyzePostmortem over every deadline
//      miss must produce a blame ledger that telescopes exactly to
//      completion - release, and on an untruncated ring nothing may land in
//      the unattributed bucket and no miss may go unmatched.
//
// A failing seed is shrunk by bisecting the global operation budget
// (BisectFailingOpLimit) and reported as a one-line repro command.

#ifndef SRC_FUZZ_TORTURE_H_
#define SRC_FUZZ_TORTURE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/core/stats.h"
#include "src/core/timer.h"
#include "src/obs/obs_report.h"
#include "src/obs/trace_analyzer.h"

namespace emeralds {
namespace fuzz {

inline constexpr const char* kTortureSchema = "emeralds.fuzz.torture/1";

// Operation kinds the generated thread bodies draw from. The order is part
// of the replay contract: reordering changes every seed's schedule.
enum class OpKind : int {
  kCompute = 0,      // preemptible CPU burn
  kSleep,            // timed block
  kYield,            // reschedule without blocking
  kLockChain,        // acquire an ascending semaphore chain, compute, release
  kCondWait,         // mutex-protected condvar wait
  kCondSignal,       // signal or broadcast
  kMboxSend,         // mailbox send / try-send with random payload
  kMboxRecv,         // receive with random (often short) buffer and timeout
  kStateWrite,       // state-message publish (designated writer only)
  kStateRead,        // state-message snapshot (lapped readers expected)
  kTimerWait,        // pace on the user timer's counting semaphore
  kIrqWait,          // bound driver thread waits for its IRQ line
  kFaultBadHandle,   // syscall on a handle that was never created
  kFaultPermission,  // syscall on an object another process locked down
  kFaultOversized,   // state write larger than the buffer
};
inline constexpr int kNumOpKinds = static_cast<int>(OpKind::kFaultOversized) + 1;

const char* OpKindToString(OpKind kind);

struct TortureOptions {
  uint64_t seed = 1;
  // Global operation budget, consumed across all threads in executive order.
  int ops = 2000;
  // Replay cap for shrinking: execute only the first `op_limit` operations
  // of the schedule (< 0 means `ops`). Same seed + same limit => same run.
  int op_limit = -1;
  bool inject_faults = true;    // include the kFault* ops in schedules
  bool irq_storms = true;       // host-raised IRQ bursts between slices
  bool charge_resets = true;    // mid-run ResetChargeAccounting() calls
  bool tiny_trace_ring = false; // force ring overflow (truncation fault case)
  // Soft-timer queue implementation under test. The choice must be invisible
  // to every oracle and to the trace digest — the differential fuzz test
  // replays seeds under both and requires bit-identical results.
  TimerQueueImpl timer_queue = TimerQueueImpl::kWheel;
  // Virtual cores. Generated threads are pinned round-robin (thread i on
  // core i % num_cores — no extra RNG draws, so 1-core schedules and digests
  // are bit-identical to the pre-SMP harness); the IRQ driver and the
  // shepherd stay on the boot core. All five oracles run core-aware, and
  // oracle 4 additionally holds each core's own ledger to wall time.
  int num_cores = 1;
  // Virtual-time cap; the run ends earlier once the op budget drains. Blocked
  // threads (condvar waits, forever-receives) make op throughput bursty, so
  // the default leaves generous headroom.
  Duration max_run_time = Seconds(20);
};

// Per-run coverage: which operations actually executed and which statuses
// came back. Statuses are indexed by -(int)status (0 == kOk).
struct TortureCoverage {
  uint64_t op_counts[kNumOpKinds] = {};
  uint64_t status_counts[32] = {};
  uint64_t irq_storms = 0;
  uint64_t charge_resets = 0;
  uint64_t timer_toggles = 0;
};

struct TortureResult {
  bool ok = false;
  uint64_t seed = 0;
  int ops_executed = 0;
  // First failure in human-readable form; empty when ok.
  std::string failure;
  // Oracle outcomes.
  size_t violations = 0;
  obs::Reconciliation reconciliation;
  uint64_t fault_mismatches = 0;
  // Fourth oracle: ledger sum == elapsed since the charge epoch (exact) AND
  // every clock advance went through a charging path (no unattributed time).
  bool cycles_conserved = false;
  int64_t cycle_residual_ns = 0;
  int64_t cycle_unattributed_ns = 0;
  // Fifth oracle: causal-token conservation over the chain event stream.
  size_t chain_violations = 0;
  uint64_t chain_orphan_hops = 0;   // nonzero only on a truncated ring
  uint64_t chain_completed = 0;     // declared-chain instances completed
  uint64_t chain_origins = 0;       // origins minted in-window
  // Sixth oracle: conservation of lateness. Every analyzed miss's ledger must
  // sum to its response time exactly; on a complete window unattributed and
  // unmatched must both be zero (a truncated ring only degrades coverage).
  uint64_t postmortem_misses = 0;
  uint64_t postmortem_conservation_failures = 0;
  int64_t postmortem_unattributed_ns = 0;
  uint64_t postmortem_unmatched = 0;
  uint64_t postmortem_incomplete = 0;
  // FNV-1a over the retained trace window (time, type, args) and the
  // reconciled counters: equal digests == bit-identical runs.
  uint64_t trace_digest = 0;
  uint64_t trace_retained = 0;
  uint64_t trace_dropped = 0;
  Duration virtual_time;
  KernelStats stats;
  TortureCoverage coverage;
};

// Runs one seeded torture run to completion and applies the oracles.
TortureResult RunTorture(const TortureOptions& options);

// Writes the trace CSV of one run to `path` (re-runs the seed; cheap and
// deterministic). Returns false when the file cannot be created.
bool ExportTortureTraceCsv(const TortureOptions& options, const std::string& path);

// Writes the standard black-box forensic bundle for one run under `dir`
// (repro.txt, trace.csv, blackbox.json — the same layout the fleet's flight
// recorder emits, so fleet_inspect/trace_inspect tooling reads both).
// Re-runs the seed deterministically; `result` supplies the failure text.
// `extra_repro` (e.g. the shrunk repro line) is appended to repro.txt when
// non-empty. Returns false when the bundle cannot be written.
bool ExportTortureBlackBox(const TortureOptions& options, const TortureResult& result,
                           const std::string& dir, const std::string& extra_repro = "");

// Smallest op budget in [1, hi] for which `fails` still holds, assuming
// monotonicity (best effort otherwise); the workhorse behind shrinking.
int BisectSmallestFailing(int hi, const std::function<bool(int)>& fails);

// Shrinks a failing run by bisecting the operation budget. Returns options
// with op_limit set to the smallest still-failing budget.
TortureOptions ShrinkFailingRun(const TortureOptions& options);

// One-line command that reproduces this exact run with the torture CLI.
std::string ReproCommand(const TortureOptions& options);

// Appends one run's JSON object (schema fragment) to `out`.
void AppendTortureRunJson(std::string* out, const TortureOptions& options,
                          const TortureResult& result);

// Full report: {"schema": "emeralds.fuzz.torture/1", "runs": [...], totals}.
std::string BuildTortureReport(const std::vector<TortureOptions>& options,
                               const std::vector<TortureResult>& results);

}  // namespace fuzz
}  // namespace emeralds

#endif  // SRC_FUZZ_TORTURE_H_
