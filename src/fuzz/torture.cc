#include "src/fuzz/torture.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/base/rng.h"
#include "src/core/kernel.h"
#include "src/hal/hardware.h"
#include "src/obs/blackbox.h"
#include "src/obs/chains.h"
#include "src/obs/postmortem.h"

namespace emeralds {
namespace fuzz {

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kCompute: return "compute";
    case OpKind::kSleep: return "sleep";
    case OpKind::kYield: return "yield";
    case OpKind::kLockChain: return "lock_chain";
    case OpKind::kCondWait: return "cond_wait";
    case OpKind::kCondSignal: return "cond_signal";
    case OpKind::kMboxSend: return "mbox_send";
    case OpKind::kMboxRecv: return "mbox_recv";
    case OpKind::kStateWrite: return "state_write";
    case OpKind::kStateRead: return "state_read";
    case OpKind::kTimerWait: return "timer_wait";
    case OpKind::kIrqWait: return "irq_wait";
    case OpKind::kFaultBadHandle: return "fault_bad_handle";
    case OpKind::kFaultPermission: return "fault_permission";
    case OpKind::kFaultOversized: return "fault_oversized";
  }
  return "?";
}

namespace {

// Everything the generated thread bodies share. Declared before the Kernel in
// RunTorture so it outlives the coroutine frames the kernel owns.
struct HarnessState {
  int limit = 0;
  int executed = 0;
  TortureCoverage coverage;
  uint64_t fault_mismatches = 0;
  std::string first_fault;

  std::vector<SemId> chain_sems;  // acquired in ascending order only
  SemId cv_mutex;
  CondvarId cv;
  std::vector<MailboxId> mailboxes;
  std::vector<SmsgId> smsgs;
  std::vector<size_t> smsg_sizes;
  SemId timer_sem;
  int irq_line = kIrqFieldbus;

  // Objects locked to process A; process-B threads probing them is the
  // deterministic permission-denial fault.
  SemId locked_sem;
  CondvarId locked_cv;
  MailboxId locked_mbox;
  SmsgId locked_smsg;
};

void CountStatus(HarnessState* st, Status status) {
  int index = -static_cast<int>(status);
  if (index >= 0 && index < 32) {
    ++st->coverage.status_counts[index];
  }
}

// Fault oracle: the injected fault must come back with exactly the status the
// syscall contract promises.
void ExpectStatus(HarnessState* st, const char* what, Status expect, Status got) {
  CountStatus(st, got);
  if (got != expect) {
    ++st->fault_mismatches;
    if (st->first_fault.empty()) {
      char line[160];
      std::snprintf(line, sizeof(line), "%s: expected %s, got %s", what, StatusToString(expect),
                    StatusToString(got));
      st->first_fault = line;
    }
  }
}

// Per-thread capabilities that gate which ops its schedule can draw.
struct ThreadRole {
  bool periodic = false;
  bool in_proc_b = false;   // may probe the locked objects
  bool irq_driver = false;  // bound to the fuzz IRQ line
  int writer_smsg = -1;     // index into smsgs this thread publishes, or -1
};

OpKind PickOp(Rng* rng, const TortureOptions& opt, const ThreadRole& role) {
  int weights[kNumOpKinds] = {};
  weights[static_cast<int>(OpKind::kCompute)] = 16;
  weights[static_cast<int>(OpKind::kSleep)] = 10;
  weights[static_cast<int>(OpKind::kYield)] = 5;
  weights[static_cast<int>(OpKind::kLockChain)] = 16;
  weights[static_cast<int>(OpKind::kCondWait)] = 3;
  weights[static_cast<int>(OpKind::kCondSignal)] = 7;
  weights[static_cast<int>(OpKind::kMboxSend)] = 10;
  weights[static_cast<int>(OpKind::kMboxRecv)] = 10;
  weights[static_cast<int>(OpKind::kStateRead)] = 8;
  weights[static_cast<int>(OpKind::kStateWrite)] = role.writer_smsg >= 0 ? 8 : 0;
  weights[static_cast<int>(OpKind::kTimerWait)] = 1;
  weights[static_cast<int>(OpKind::kIrqWait)] = role.irq_driver ? 40 : 0;
  if (opt.inject_faults) {
    weights[static_cast<int>(OpKind::kFaultBadHandle)] = 4;
    weights[static_cast<int>(OpKind::kFaultPermission)] = role.in_proc_b ? 4 : 0;
    weights[static_cast<int>(OpKind::kFaultOversized)] = role.writer_smsg >= 0 ? 2 : 0;
  }
  int total = 0;
  for (int w : weights) {
    total += w;
  }
  int pick = static_cast<int>(rng->UniformInt(0, total - 1));
  for (int i = 0; i < kNumOpKinds; ++i) {
    pick -= weights[i];
    if (pick < 0) {
      return static_cast<OpKind>(i);
    }
  }
  return OpKind::kCompute;
}

// The generated thread body: an interpreter drawing ops from its private Rng
// stream until the *global* budget is spent. Budget consumption happens in
// executive order, so (seed, limit) fully determines every schedule.
ThreadBodyFactory MakeTortureBody(HarnessState* st, const TortureOptions opt, Rng stream,
                                  ThreadRole role) {
  return [st, opt, stream, role](ThreadApi api) -> ThreadBody {
    Rng rng = stream;
    std::array<uint8_t, 192> scratch{};
    while (st->executed < st->limit) {
      ++st->executed;
      OpKind op = PickOp(&rng, opt, role);
      ++st->coverage.op_counts[static_cast<int>(op)];
      switch (op) {
        case OpKind::kCompute:
          co_await api.Compute(Microseconds(rng.UniformInt(10, 300)));
          break;
        case OpKind::kSleep:
          co_await api.Sleep(Microseconds(rng.UniformInt(50, 1500)));
          break;
        case OpKind::kYield:
          co_await api.Yield();
          break;
        case OpKind::kLockChain: {
          // Ascending-id acquisition order keeps the random chains
          // deadlock-free while still nesting up to three levels deep.
          int n = static_cast<int>(st->chain_sems.size());
          int start = static_cast<int>(rng.UniformInt(0, n - 1));
          int len = std::min<int>(static_cast<int>(rng.UniformInt(1, 3)), n - start);
          int held = 0;
          for (int i = 0; i < len; ++i) {
            Status s = co_await api.Acquire(st->chain_sems[start + i]);
            CountStatus(st, s);
            if (s != Status::kOk) {
              break;
            }
            ++held;
          }
          if (held > 0) {
            co_await api.Compute(Microseconds(rng.UniformInt(5, 120)));
          }
          for (int i = held - 1; i >= 0; --i) {
            Status s = co_await api.Release(st->chain_sems[start + i]);
            CountStatus(st, s);
          }
          break;
        }
        case OpKind::kCondWait: {
          Status m = co_await api.Acquire(st->cv_mutex);
          CountStatus(st, m);
          if (m == Status::kOk) {
            Status w = co_await api.Wait(st->cv, st->cv_mutex);
            CountStatus(st, w);
            Status r = co_await api.Release(st->cv_mutex);
            CountStatus(st, r);
          }
          break;
        }
        case OpKind::kCondSignal: {
          Status m = co_await api.Acquire(st->cv_mutex);
          CountStatus(st, m);
          if (m == Status::kOk) {
            Status s = rng.Bernoulli(0.3) ? co_await api.Broadcast(st->cv)
                                          : co_await api.Signal(st->cv);
            CountStatus(st, s);
            Status r = co_await api.Release(st->cv_mutex);
            CountStatus(st, r);
          }
          break;
        }
        case OpKind::kMboxSend: {
          MailboxId mbox = st->mailboxes[rng.UniformInt(
              0, static_cast<int64_t>(st->mailboxes.size()) - 1)];
          size_t len = static_cast<size_t>(rng.UniformInt(0, 48));
          for (size_t i = 0; i < len; i += 8) {
            uint64_t word = rng.Next();
            std::memcpy(&scratch[i], &word, std::min<size_t>(8, len - i));
          }
          std::span<const uint8_t> payload(scratch.data(), len);
          Status s = rng.Bernoulli(0.3) ? co_await api.TrySend(mbox, payload)
                                        : co_await api.Send(mbox, payload);
          CountStatus(st, s);
          break;
        }
        case OpKind::kMboxRecv: {
          MailboxId mbox = st->mailboxes[rng.UniformInt(
              0, static_cast<int64_t>(st->mailboxes.size()) - 1)];
          // Short buffers on purpose: the kTruncated contract is part of
          // what the fuzzer exercises.
          static constexpr size_t kCaps[4] = {0, 8, 16, 64};
          size_t cap = kCaps[rng.UniformInt(0, 3)];
          int64_t flavor = rng.UniformInt(0, 9);
          Duration timeout;  // 0 = wait forever
          if (flavor < 2) {
            timeout = kNoWait;
          } else if (flavor < 9) {
            timeout = Microseconds(rng.UniformInt(100, 2000));
          }
          RecvResult r = co_await api.Recv(mbox, std::span<uint8_t>(scratch.data(), cap), timeout);
          CountStatus(st, r.status);
          break;
        }
        case OpKind::kStateWrite: {
          SmsgId smsg = st->smsgs[role.writer_smsg];
          size_t size = st->smsg_sizes[role.writer_smsg];
          size_t len = static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(size)));
          for (size_t i = 0; i < len; i += 8) {
            uint64_t word = rng.Next();
            std::memcpy(&scratch[i], &word, std::min<size_t>(8, len - i));
          }
          Status s = co_await api.StateWrite(smsg, std::span<const uint8_t>(scratch.data(), len));
          CountStatus(st, s);
          break;
        }
        case OpKind::kStateRead: {
          int idx = static_cast<int>(
              rng.UniformInt(0, static_cast<int64_t>(st->smsgs.size()) - 1));
          size_t size = st->smsg_sizes[idx];
          size_t cap = rng.Bernoulli(0.3) ? size / 2 : size;
          StateReadResult r =
              co_await api.StateRead(st->smsgs[idx], std::span<uint8_t>(scratch.data(), cap));
          CountStatus(st, r.status);
          break;
        }
        case OpKind::kTimerWait: {
          // Paces on the user timer's counting semaphore; blocks until the
          // host-side injection schedule starts the timer.
          Status s = co_await api.Acquire(st->timer_sem);
          CountStatus(st, s);
          if (s == Status::kOk) {
            Status r = co_await api.Release(st->timer_sem);
            CountStatus(st, r);
          }
          break;
        }
        case OpKind::kIrqWait: {
          Status s = co_await api.WaitIrq(st->irq_line);
          CountStatus(st, s);
          break;
        }
        case OpKind::kFaultBadHandle: {
          int64_t variant = rng.UniformInt(0, 3);
          int bogus = static_cast<int>(rng.UniformInt(500, 5000));
          if (variant == 0) {
            Status s = co_await api.Acquire(SemId(bogus));
            ExpectStatus(st, "acquire(bad sem)", Status::kBadHandle, s);
          } else if (variant == 1) {
            Status s =
                co_await api.Send(MailboxId(bogus), std::span<const uint8_t>(scratch.data(), 4));
            ExpectStatus(st, "send(bad mailbox)", Status::kBadHandle, s);
          } else if (variant == 2) {
            RecvResult r = co_await api.Recv(MailboxId(bogus),
                                             std::span<uint8_t>(scratch.data(), 8), kNoWait);
            ExpectStatus(st, "recv(bad mailbox)", Status::kBadHandle, r.status);
          } else {
            StateReadResult r =
                co_await api.StateRead(SmsgId(bogus), std::span<uint8_t>(scratch.data(), 8));
            ExpectStatus(st, "state_read(bad smsg)", Status::kBadHandle, r.status);
          }
          break;
        }
        case OpKind::kFaultPermission: {
          int64_t variant = rng.UniformInt(0, 3);
          if (variant == 0) {
            Status s = co_await api.Acquire(st->locked_sem);
            ExpectStatus(st, "acquire(locked sem)", Status::kPermissionDenied, s);
          } else if (variant == 1) {
            Status s = co_await api.Send(st->locked_mbox,
                                         std::span<const uint8_t>(scratch.data(), 4));
            ExpectStatus(st, "send(locked mailbox)", Status::kPermissionDenied, s);
          } else if (variant == 2) {
            Status s = co_await api.Signal(st->locked_cv);
            ExpectStatus(st, "signal(locked condvar)", Status::kPermissionDenied, s);
          } else {
            Status s = co_await api.StateWrite(st->locked_smsg,
                                               std::span<const uint8_t>(scratch.data(), 4));
            ExpectStatus(st, "state_write(locked smsg)", Status::kPermissionDenied, s);
          }
          break;
        }
        case OpKind::kFaultOversized: {
          // Larger than the buffer was created with; must be refused before
          // the single-writer claim is taken.
          size_t size = st->smsg_sizes[role.writer_smsg];
          size_t len = std::min(scratch.size(), size + static_cast<size_t>(rng.UniformInt(1, 32)));
          Status s = co_await api.StateWrite(st->smsgs[role.writer_smsg],
                                             std::span<const uint8_t>(scratch.data(), len));
          ExpectStatus(st, "state_write(oversized)", Status::kInvalidArgument, s);
          break;
        }
      }
    }
    // Budget spent: periodic threads park on their release loop (keeping the
    // scheduler busy), aperiodic ones exit.
    while (role.periodic) {
      co_await api.WaitNextPeriod();
    }
  };
}

uint64_t Fnv1a(uint64_t hash, const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t DigestRun(const Kernel& kernel) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  const TraceSink& trace = kernel.trace();
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace.at(i);
    int64_t us = e.time.micros();
    int32_t type = static_cast<int32_t>(e.type);
    hash = Fnv1a(hash, &us, sizeof(us));
    hash = Fnv1a(hash, &type, sizeof(type));
    hash = Fnv1a(hash, &e.arg0, sizeof(e.arg0));
    hash = Fnv1a(hash, &e.arg1, sizeof(e.arg1));
    hash = Fnv1a(hash, &e.arg2, sizeof(e.arg2));
  }
  const KernelStats& s = kernel.stats();
  uint64_t counters[] = {s.context_switches, s.jobs_released,   s.jobs_completed,
                         s.deadline_misses,  s.sem_acquires,    s.mailbox_sends,
                         s.mailbox_receives, s.smsg_writes,     s.smsg_reads,
                         s.smsg_read_retries, s.mailbox_truncations, s.pi_chain_limit_hits,
                         s.interrupts,       s.timer_dispatches, s.chain_emits,
                         s.chain_consumes,   s.chain_origins};
  hash = Fnv1a(hash, counters, sizeof(counters));
  return hash;
}

// One deterministic run: build the seeded topology, interpret the schedules,
// inject host-side events at slice boundaries, then return the still-live
// kernel to the caller's continuation via `finish`.
template <typename Finish>
void DriveTorture(const TortureOptions& opt, HarnessState* st, Finish finish) {
  Rng root(opt.seed);
  Rng topo = root.Fork(1);
  Rng inject = root.Fork(2);

  st->limit = opt.op_limit < 0 ? opt.ops : std::min(opt.op_limit, opt.ops);

  KernelConfig config;
  switch (topo.UniformInt(0, 3)) {
    case 0: config.scheduler = SchedulerSpec::Edf(); break;
    case 1: config.scheduler = SchedulerSpec::Rm(); break;
    case 2: config.scheduler = SchedulerSpec::Csd(2); break;
    default: config.scheduler = SchedulerSpec::Csd(3); break;
  }
  int dp_bands = 0;
  for (size_t i = 0; i < config.scheduler.bands.size(); ++i) {
    if (config.scheduler.bands[i] == QueueKind::kEdfList) {
      ++dp_bands;
    }
  }
  config.cost_model = CostModel::MC68040_25MHz();
  config.timer_queue = opt.timer_queue;
  config.num_cores = opt.num_cores;
  config.default_sem_mode = topo.Bernoulli(0.5) ? SemMode::kCse : SemMode::kStandard;
  // Sized so the default ring retains the whole run: overhead-span events
  // roughly triple the trace volume, and oracle 6's zero-unattributed demand
  // only binds on a complete window.
  config.trace_capacity =
      opt.tiny_trace_ring ? 128 : std::max<size_t>(49152, static_cast<size_t>(opt.ops) * 96);

  // Declared causal chains across the fuzz topology: the chain analyzer
  // reconstructs instances of these from the trace, and oracle 5 holds the
  // token stream itself to conservation regardless of what resolves.
  {
    char irq_channel[16];
    std::snprintf(irq_channel, sizeof(irq_channel), "irq:%d", kIrqFieldbus);
    ChainSpec irq_chain;
    irq_chain.name = "irq-driver";
    irq_chain.stages.push_back(ChainStageSpec{irq_channel, "fuzz_irq"});
    config.chains.push_back(irq_chain);

    ChainSpec timer_chain;
    timer_chain.name = "timer-sem";
    timer_chain.deadline = Milliseconds(50);
    timer_chain.stages.push_back(ChainStageSpec{"sem:timer_sem", ""});
    config.chains.push_back(timer_chain);

    ChainSpec pub_chain;
    pub_chain.name = "smsg-pub";
    pub_chain.stages.push_back(ChainStageSpec{"smsg:smsg", ""});
    config.chains.push_back(pub_chain);

    // Two-hop: the shepherd's periodic release through its timer-sem nudge.
    ChainSpec shepherd_chain;
    shepherd_chain.name = "shepherd-timer";
    shepherd_chain.stages.push_back(ChainStageSpec{"release:fuzz_shepherd", "fuzz_shepherd"});
    shepherd_chain.stages.push_back(ChainStageSpec{"sem:timer_sem", ""});
    config.chains.push_back(shepherd_chain);

    // Deliberately unresolvable: specs naming absent objects must be marked
    // unresolved, never fail the run.
    ChainSpec ghost;
    ghost.name = "ghost";
    ghost.stages.push_back(ChainStageSpec{"mbox:no_such_mailbox", ""});
    config.chains.push_back(ghost);
  }

  Hardware hw;
  Kernel kernel(hw, config);

  ProcessId proc_a = kernel.CreateProcess("fuzz_a").value();
  ProcessId proc_b = kernel.CreateProcess("fuzz_b").value();

  int num_chain = static_cast<int>(topo.UniformInt(3, 6));
  for (int i = 0; i < num_chain; ++i) {
    st->chain_sems.push_back(kernel.CreateSemaphore("chain").value());
  }
  st->cv_mutex = kernel.CreateSemaphore("cv_mutex").value();
  st->cv = kernel.CreateCondvar("cv").value();
  st->timer_sem = kernel.CreateSemaphore("timer_sem", 0).value();

  int num_mbox = static_cast<int>(topo.UniformInt(2, 3));
  for (int i = 0; i < num_mbox; ++i) {
    st->mailboxes.push_back(
        kernel.CreateMailbox("mbox", static_cast<size_t>(topo.UniformInt(1, 4))).value());
  }
  int num_smsg = 2;
  for (int i = 0; i < num_smsg; ++i) {
    size_t size = static_cast<size_t>(topo.UniformInt(4, 16)) * 8;
    int slots = static_cast<int>(topo.UniformInt(1, 3));  // 1 => lapped readers
    st->smsgs.push_back(kernel.CreateStateMessage("smsg", size, slots).value());
    st->smsg_sizes.push_back(size);
  }

  // Fault-plan objects. Creation-time contract checks ride along: a
  // zero-capacity mailbox must be refused outright.
  if (kernel.CreateMailbox("zero", 0).status() != Status::kInvalidArgument) {
    ++st->fault_mismatches;
    if (st->first_fault.empty()) {
      st->first_fault = "create_mailbox(depth 0) was not kInvalidArgument";
    }
  }
  AccessPolicy only_a = AccessPolicy::Only({proc_a});
  st->locked_sem = kernel.CreateSemaphore("locked_sem", 1, only_a).value();
  st->locked_cv = kernel.CreateCondvar("locked_cv", only_a).value();
  st->locked_mbox = kernel.CreateMailbox("locked_mbox", 2, only_a).value();
  st->locked_smsg = kernel.CreateStateMessage("locked_smsg", 16, 2, only_a).value();

  TimerId timer = kernel.CreateTimer("fuzz_timer", st->timer_sem).value();

  int num_threads = static_cast<int>(topo.UniformInt(5, 9));
  static constexpr int kPeriodsUs[6] = {2000, 3000, 5000, 8000, 12000, 20000};
  for (int i = 0; i < num_threads; ++i) {
    ThreadRole role;
    role.periodic = topo.Bernoulli(0.7);
    role.in_proc_b = topo.Bernoulli(0.4);
    for (int w = 0; w < num_smsg; ++w) {
      // One designated writer per state message (single-writer invariant).
      if (i == w) {
        role.writer_smsg = w;
      }
    }
    ThreadParams params;
    params.name = "fuzz";
    params.process = role.in_proc_b ? proc_b : proc_a;
    // Round-robin pinning keeps the assignment deterministic without a new
    // RNG draw: at num_cores == 1 every thread lands on core 0 and the
    // schedule replays bit-identically to the single-core harness.
    params.core = i % opt.num_cores;
    params.body = MakeTortureBody(st, opt, root.Fork(1000 + static_cast<uint64_t>(i)), role);
    if (role.periodic) {
      params.period = Microseconds(kPeriodsUs[topo.UniformInt(0, 5)]);
      params.first_release = Microseconds(topo.UniformInt(0, 1000));
      if (dp_bands > 0 && topo.Bernoulli(0.6)) {
        params.band = static_cast<int>(topo.UniformInt(0, dp_bands - 1));
      }
    }
    kernel.CreateThread(params);
  }
  // The IRQ-driven driver thread: aperiodic, in process A, bound to the line
  // the host storms.
  {
    ThreadRole role;
    role.irq_driver = true;
    ThreadParams params;
    params.name = "fuzz_irq";
    params.process = proc_a;
    params.body = MakeTortureBody(st, opt, root.Fork(2000), role);
    ThreadId driver = kernel.CreateThread(params).value();
    kernel.BindIrqThread(driver, st->irq_line);
  }
  // Shepherd: the generated threads can all wedge on blocking primitives
  // (everyone in a condvar wait, forever-receives on drained mailboxes,
  // timer-sem waits while the timer is stopped). This periodic thread nudges
  // every blocking primitive so the schedules keep consuming budget. It is
  // part of the deterministic workload, not host-side injection.
  {
    ThreadParams params;
    params.name = "fuzz_shepherd";
    params.process = proc_a;
    params.period = Milliseconds(2);
    params.body = [st](ThreadApi api) -> ThreadBody {
      uint8_t nudge = 0xee;
      uint8_t sink[1];
      for (;;) {
        co_await api.Acquire(st->cv_mutex);
        co_await api.Broadcast(st->cv);
        co_await api.Release(st->cv_mutex);
        co_await api.Release(st->timer_sem);
        for (MailboxId mbox : st->mailboxes) {
          // Send-then-drain: a blocked receiver gets a message, a blocked
          // sender gets a free slot, and the queue depth stays put.
          co_await api.TrySend(mbox, std::span<const uint8_t>(&nudge, 1));
          co_await api.Recv(mbox, std::span<uint8_t>(sink, 1), kNoWait);
        }
        co_await api.WaitNextPeriod();
      }
    };
    kernel.CreateThread(params);
  }

  kernel.EnableStatsSampling(Milliseconds(5), 128);
  kernel.Start();

  bool timer_running = false;
  Instant end = Instant() + opt.max_run_time;
  int drain = -1;
  while (kernel.now() < end) {
    Instant next = std::min(end, kernel.now() + Milliseconds(1));
    kernel.RunUntil(next);
    // Host-side injections at the slice boundary, all drawn from the
    // dedicated injection stream so they replay exactly.
    if (opt.irq_storms && inject.Bernoulli(0.25)) {
      hw.irq().Raise(st->irq_line);
      ++st->coverage.irq_storms;
    }
    if (opt.charge_resets && inject.Bernoulli(0.04)) {
      kernel.ResetChargeAccounting();
      ++st->coverage.charge_resets;
    }
    if (inject.Bernoulli(0.06)) {
      if (timer_running) {
        kernel.StopTimer(timer);
      } else {
        kernel.StartTimer(timer, Microseconds(inject.UniformInt(100, 800)),
                          Microseconds(inject.UniformInt(300, 1200)));
      }
      timer_running = !timer_running;
      ++st->coverage.timer_toggles;
    }
    if (st->executed >= st->limit) {
      // Budget spent: let in-flight blocking ops resolve, then stop.
      if (drain < 0) {
        drain = 8;
      } else if (--drain == 0) {
        break;
      }
    }
  }

  finish(kernel);
}

}  // namespace

TortureResult RunTorture(const TortureOptions& options) {
  TortureResult result;
  result.seed = options.seed;
  HarnessState st;
  DriveTorture(options, &st, [&](Kernel& kernel) {
    obs::TraceAnalysis analysis = obs::AnalyzeTrace(kernel.trace());
    result.reconciliation = obs::ComputeReconciliation(analysis, kernel.stats());
    result.violations = analysis.violations.size();

    // Oracle 5: causal-token conservation (and declared-chain bookkeeping).
    obs::ChainAnalysis chains =
        obs::AnalyzeChains(kernel.trace(), kernel.resolved_chains());
    result.chain_violations = chains.violations.size();
    result.chain_orphan_hops = chains.orphan_hops;
    result.chain_origins = chains.origins_minted;
    for (const obs::ChainReport& c : chains.chains) {
      result.chain_completed += c.completed;
    }
    std::string first_chain_violation;
    if (!chains.violations.empty()) {
      first_chain_violation = chains.violations[0].detail;
    } else if (chains.complete_window && chains.orphan_hops > 0) {
      first_chain_violation = "orphan hops in an untruncated trace";
    }
    // Oracle 6: conservation of lateness. Every miss ledger telescopes by
    // construction unless the engine mis-walked the trace; a complete window
    // must additionally attribute every nanosecond and match every miss.
    obs::PostmortemAnalysis postmortem = obs::AnalyzePostmortem(kernel.trace());
    result.postmortem_misses = postmortem.misses_analyzed;
    result.postmortem_conservation_failures = postmortem.conservation_failures;
    result.postmortem_unattributed_ns = postmortem.blame.unattributed_ns;
    result.postmortem_unmatched = postmortem.unmatched_misses;
    result.postmortem_incomplete = postmortem.incomplete_misses;

    result.trace_retained = kernel.trace().size();
    result.trace_dropped = kernel.trace().dropped();
    result.trace_digest = DigestRun(kernel);
    result.virtual_time = kernel.now() - Instant();
    result.stats = kernel.stats();

    // Oracle 4: cycle conservation. Stats-window exactness survives the
    // mid-run charge resets (the epoch rebases with them), and the clock's
    // unattributed bucket catches any advance that bypassed the kernel.
    CycleConservation conservation = CheckCycleConservation(kernel.stats(), kernel.now());
    result.cycle_residual_ns = conservation.residual.nanos();
    result.cycle_unattributed_ns =
        kernel.hardware().clock().ledger().at(CycleBucket::kUnattributed).nanos();
    result.cycles_conserved = conservation.exact() && result.cycle_unattributed_ns == 0;
    // On SMP the fleet-summed check above is necessary but not sufficient:
    // each core's own ledger must also account for exactly the wall time
    // since the epoch (a cross-core mischarge can cancel in the sum).
    for (int c = 0; c < kernel.stats().num_cores; ++c) {
      CycleConservation per = CheckCoreCycleConservation(kernel.stats(), c, kernel.now());
      if (!per.exact()) {
        result.cycles_conserved = false;
        result.cycle_residual_ns = per.residual.nanos();
      }
    }

    if (result.violations > 0) {
      result.failure = "trace invariant violated: " + analysis.violations[0].detail;
    } else if (st.fault_mismatches > 0) {
      result.failure = "fault oracle: " + st.first_fault;
    } else if (result.trace_dropped == 0 &&
               (!result.reconciliation.checked || !result.reconciliation.ok())) {
      result.failure = "reconciliation mismatch (trace vs kernel counters)";
    } else if (result.trace_dropped > 0 && result.reconciliation.checked) {
      result.failure = "reconciliation claimed a truncated trace was checked";
    } else if (!result.cycles_conserved) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "cycle conservation violated: residual %lld ns, unattributed %lld ns",
                    static_cast<long long>(result.cycle_residual_ns),
                    static_cast<long long>(result.cycle_unattributed_ns));
      result.failure = buf;
    } else if (!first_chain_violation.empty()) {
      result.failure = "chain token conservation: " + first_chain_violation;
    } else if (result.postmortem_conservation_failures > 0 ||
               (!postmortem.window_truncated &&
                (result.postmortem_unattributed_ns != 0 || result.postmortem_unmatched > 0))) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "lateness conservation violated: %llu ledger(s) failed, "
                    "unattributed %lld ns, %llu unmatched miss(es)",
                    static_cast<unsigned long long>(result.postmortem_conservation_failures),
                    static_cast<long long>(result.postmortem_unattributed_ns),
                    static_cast<unsigned long long>(result.postmortem_unmatched));
      result.failure = buf;
    }
  });
  result.ops_executed = st.executed;
  result.fault_mismatches = st.fault_mismatches;
  result.coverage = st.coverage;
  result.ok = result.failure.empty();
  return result;
}

bool ExportTortureTraceCsv(const TortureOptions& options, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return false;
  }
  HarnessState st;
  DriveTorture(options, &st, [&](Kernel& kernel) { kernel.trace().ExportCsv(out); });
  std::fclose(out);
  return true;
}

bool ExportTortureBlackBox(const TortureOptions& options, const TortureResult& result,
                           const std::string& dir, const std::string& extra_repro) {
  char label[48];
  std::snprintf(label, sizeof(label), "torture-seed-%llu",
                static_cast<unsigned long long>(options.seed));
  std::string repro = ReproCommand(options);
  if (!extra_repro.empty()) {
    repro += "\n" + extra_repro;
  }
  bool ok = false;
  HarnessState st;
  DriveTorture(options, &st, [&](Kernel& kernel) {
    obs::BlackBoxSnapshot box = obs::CaptureBlackBox(
        kernel, label, result.failure.empty() ? "manual export" : result.failure, repro);
    ok = obs::WriteBlackBoxBundle(box, dir);
  });
  return ok;
}

int BisectSmallestFailing(int hi, const std::function<bool(int)>& fails) {
  int lo = 1;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (fails(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

TortureOptions ShrinkFailingRun(const TortureOptions& options) {
  TortureOptions shrunk = options;
  int hi = options.op_limit < 0 ? options.ops : options.op_limit;
  shrunk.op_limit = BisectSmallestFailing(hi, [&](int limit) {
    TortureOptions probe = options;
    probe.op_limit = limit;
    return !RunTorture(probe).ok;
  });
  return shrunk;
}

std::string ReproCommand(const TortureOptions& options) {
  char line[256];
  int limit = options.op_limit < 0 ? options.ops : options.op_limit;
  char cores[32] = "";
  if (options.num_cores != 1) {
    std::snprintf(cores, sizeof(cores), " --num-cores=%d", options.num_cores);
  }
  std::snprintf(line, sizeof(line),
                "torture --seed=%llu --ops=%d --op-limit=%d%s%s%s%s%s%s",
                static_cast<unsigned long long>(options.seed), options.ops, limit,
                options.inject_faults ? "" : " --no-faults",
                options.irq_storms ? "" : " --no-irq-storms",
                options.charge_resets ? "" : " --no-charge-resets",
                options.tiny_trace_ring ? " --tiny-ring" : "",
                options.timer_queue == TimerQueueImpl::kSortedList ? " --timer-queue=list" : "",
                cores);
  return line;
}

namespace {

void AppendKeyValue(std::string* out, const char* key, uint64_t value, bool* first) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "%s\"%s\": %llu", *first ? "" : ", ", key,
                static_cast<unsigned long long>(value));
  *first = false;
  *out += buffer;
}

}  // namespace

void AppendTortureRunJson(std::string* out, const TortureOptions& options,
                          const TortureResult& result) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "    {\"seed\": %llu, \"ok\": %s, \"ops_executed\": %d, "
                "\"violations\": %llu, \"fault_mismatches\": %llu,\n",
                static_cast<unsigned long long>(result.seed), result.ok ? "true" : "false",
                result.ops_executed, static_cast<unsigned long long>(result.violations),
                static_cast<unsigned long long>(result.fault_mismatches));
  *out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "     \"reconciliation\": {\"checked\": %s, \"ok\": %s},\n",
                result.reconciliation.checked ? "true" : "false",
                result.reconciliation.ok() ? "true" : "false");
  *out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "     \"cycles\": {\"conserved\": %s, \"residual_ns\": %lld, "
                "\"unattributed_ns\": %lld},\n",
                result.cycles_conserved ? "true" : "false",
                static_cast<long long>(result.cycle_residual_ns),
                static_cast<long long>(result.cycle_unattributed_ns));
  *out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "     \"trace\": {\"retained\": %llu, \"dropped\": %llu, \"digest\": "
                "\"%016llx\"},\n",
                static_cast<unsigned long long>(result.trace_retained),
                static_cast<unsigned long long>(result.trace_dropped),
                static_cast<unsigned long long>(result.trace_digest));
  *out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "     \"chains\": {\"violations\": %llu, \"orphan_hops\": %llu, "
                "\"completed\": %llu, \"origins\": %llu},\n",
                static_cast<unsigned long long>(result.chain_violations),
                static_cast<unsigned long long>(result.chain_orphan_hops),
                static_cast<unsigned long long>(result.chain_completed),
                static_cast<unsigned long long>(result.chain_origins));
  *out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "     \"postmortem\": {\"misses_analyzed\": %llu, "
                "\"conservation_failures\": %llu, \"unattributed_ns\": %lld, "
                "\"unmatched\": %llu, \"incomplete\": %llu},\n",
                static_cast<unsigned long long>(result.postmortem_misses),
                static_cast<unsigned long long>(result.postmortem_conservation_failures),
                static_cast<long long>(result.postmortem_unattributed_ns),
                static_cast<unsigned long long>(result.postmortem_unmatched),
                static_cast<unsigned long long>(result.postmortem_incomplete));
  *out += buffer;
  *out += "     \"ops\": {";
  bool first = true;
  for (int i = 0; i < kNumOpKinds; ++i) {
    AppendKeyValue(out, OpKindToString(static_cast<OpKind>(i)), result.coverage.op_counts[i],
                   &first);
  }
  *out += "},\n     \"statuses\": {";
  first = true;
  for (int i = 0; i < 32; ++i) {
    if (result.coverage.status_counts[i] > 0) {
      AppendKeyValue(out, StatusToString(static_cast<Status>(-i)),
                     result.coverage.status_counts[i], &first);
    }
  }
  *out += "},\n     \"stats\": {";
  first = true;
  AppendKeyValue(out, "context_switches", result.stats.context_switches, &first);
  AppendKeyValue(out, "jobs_completed", result.stats.jobs_completed, &first);
  AppendKeyValue(out, "deadline_misses", result.stats.deadline_misses, &first);
  AppendKeyValue(out, "sem_acquires", result.stats.sem_acquires, &first);
  AppendKeyValue(out, "mailbox_truncations", result.stats.mailbox_truncations, &first);
  AppendKeyValue(out, "pi_chain_limit_hits", result.stats.pi_chain_limit_hits, &first);
  AppendKeyValue(out, "smsg_read_retries", result.stats.smsg_read_retries, &first);
  AppendKeyValue(out, "interrupts", result.stats.interrupts, &first);
  *out += "},\n";
  std::snprintf(buffer, sizeof(buffer), "     \"repro\": \"%s\"}",
                ReproCommand(options).c_str());
  *out += buffer;
}

std::string BuildTortureReport(const std::vector<TortureOptions>& options,
                               const std::vector<TortureResult>& results) {
  std::string out;
  out += "{\n  \"schema\": \"";
  out += kTortureSchema;
  out += "\",\n  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    AppendTortureRunJson(&out, options[i], results[i]);
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"totals\": {";
  uint64_t failed = 0;
  uint64_t ops = 0;
  for (const TortureResult& r : results) {
    failed += r.ok ? 0 : 1;
    ops += static_cast<uint64_t>(r.ops_executed);
  }
  bool first = true;
  AppendKeyValue(&out, "runs", results.size(), &first);
  AppendKeyValue(&out, "failed", failed, &first);
  AppendKeyValue(&out, "ops_executed", ops, &first);
  out += "}\n}\n";
  return out;
}

}  // namespace fuzz
}  // namespace emeralds
