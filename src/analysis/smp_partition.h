// Partitioned-SMP admission for CSD (the multi-core extension of the
// Section 5.5.3 off-line search).
//
// EMERALDS' SMP model is fully partitioned: every task is pinned to one core
// at configuration time and never migrates, so schedulability decomposes into
// (a) a task-to-core assignment and (b) the unchanged single-core CSD-x test
// run independently per core. The assignment stage is first-fit decreasing by
// utilization — the classic partitioned-EDF heuristic — with ties broken by
// original (period-sorted) task order so the result is deterministic. Each
// core's task subset then goes through BestCsdPartition exactly as a
// single-core workload would.
//
// At num_cores == 1 the assignment is the identity and the admission result
// is golden-equivalent to the single-core search by construction (the tests
// enforce bit-equality of the winning queue partition).

#ifndef SRC_ANALYSIS_SMP_PARTITION_H_
#define SRC_ANALYSIS_SMP_PARTITION_H_

#include <vector>

#include "src/analysis/breakdown.h"
#include "src/workload/workload.h"

namespace emeralds {

struct SmpCoreAdmission {
  // The core's task subset, in the original period-sorted order (filtering a
  // period-sorted set preserves the sort, so the per-core CSD search sees
  // exactly what a single-core search over these tasks would).
  TaskSet tasks;
  // Indices into the input task set, same order as `tasks`.
  std::vector<int> task_indices;
  // Scaled utilization packed onto this core by the FFD stage.
  double utilization = 0.0;
  // Winning CSD queue sizes (DP queues first, FP last); empty when the
  // subset is non-empty and no allocation is feasible. An empty core is
  // trivially feasible with an empty partition.
  std::vector<int> csd_partition;
  bool feasible = false;
};

struct SmpPartitionResult {
  // True only when every task found a core under the unit-capacity bin pack
  // AND every core's subset passed its CSD-x test.
  bool feasible = false;
  // True when the FFD stage alone succeeded (every task placed in a core
  // with scaled utilization <= 1.0 after placement).
  bool packed = false;
  // task index -> core id. Always fully populated: a task that overflows
  // every bin is placed on the least-loaded core (and `packed` turns false)
  // so the per-core reports stay meaningful.
  std::vector<int> assignment;
  std::vector<SmpCoreAdmission> cores;

  double max_core_utilization() const {
    double m = 0.0;
    for (const SmpCoreAdmission& c : cores) {
      if (c.utilization > m) {
        m = c.utilization;
      }
    }
    return m;
  }
};

// Runs the two-stage partitioned admission: FFD by scaled utilization
// (capacity 1.0 per core), then per-core BestCsdPartition(queues, scale,
// cost) with the same exhaustive-below-four-queues policy as the single-core
// search. `sorted_tasks` must be period-sorted (RM order), as for every other
// analysis entry point. Optional `stats` accumulates the per-core search
// counters.
SmpPartitionResult PartitionCsdSmp(const TaskSet& sorted_tasks, int num_cores, int queues,
                                   double scale, const CostModel& cost,
                                   CsdSearchStats* stats = nullptr);

}  // namespace emeralds

#endif  // SRC_ANALYSIS_SMP_PARTITION_H_
