// Breakdown-utilization computation (Section 5.7).
//
// For a workload and scheduling policy, execution times are scaled up until
// the workload becomes infeasible under the policy's overhead-aware
// schedulability test; the utilization at that point is the breakdown
// utilization [13]. For CSD, feasibility at a given scale means "feasible
// under the best task-to-queue allocation", found by the off-line search of
// Section 5.5.3 (exhaustive for two and three queues, seeded hill-climbing
// for four and more — the paper itself stops exhaustive search at three).

#ifndef SRC_ANALYSIS_BREAKDOWN_H_
#define SRC_ANALYSIS_BREAKDOWN_H_

#include <vector>

#include "src/analysis/overhead.h"
#include "src/analysis/sched_test.h"
#include "src/workload/workload.h"

namespace emeralds {

struct PolicySpec {
  enum class Kind { kEdf, kRm, kRmHeap, kCsd };
  Kind kind = Kind::kEdf;
  int csd_queues = 2;  // x in CSD-x (>= 2)

  static PolicySpec Edf() { return {Kind::kEdf, 0}; }
  static PolicySpec Rm() { return {Kind::kRm, 0}; }
  static PolicySpec RmHeap() { return {Kind::kRmHeap, 0}; }
  static PolicySpec Csd(int queues) { return {Kind::kCsd, queues}; }

  const char* Name() const;
};

struct BreakdownOptions {
  // Bisection resolution in utilization units.
  double precision = 0.002;
  // Force exhaustive partition search for CSD-4+ (CSD-2/3 are always
  // exhaustive, as in the paper).
  bool exhaustive = false;
  // Evaluation budget for the hill-climbing CSD-4+ search.
  int max_hill_evals = 500;
};

struct BreakdownResult {
  double utilization = 0.0;
  // CSD only: the winning queue sizes (DP queues first, FP last).
  std::vector<int> partition;
};

BreakdownResult ComputeBreakdown(const TaskSet& sorted_tasks, PolicySpec policy,
                                 const CostModel& cost, const BreakdownOptions& options = {});

// Best CSD allocation at a fixed scale (the paper's 2-3 minute off-line
// search, exposed for workload configuration and the examples). Returns an
// empty vector when no allocation is feasible.
std::vector<int> BestCsdPartition(const TaskSet& sorted_tasks, int queues, double scale,
                                  const CostModel& cost, bool exhaustive = true);

}  // namespace emeralds

#endif  // SRC_ANALYSIS_BREAKDOWN_H_
