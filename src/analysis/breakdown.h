// Breakdown-utilization computation (Section 5.7).
//
// For a workload and scheduling policy, execution times are scaled up until
// the workload becomes infeasible under the policy's overhead-aware
// schedulability test; the utilization at that point is the breakdown
// utilization [13]. For CSD, feasibility at a given scale means "feasible
// under the best task-to-queue allocation", found by the off-line search of
// Section 5.5.3 (exhaustive for two and three queues, seeded hill-climbing
// for four and more — the paper itself stops exhaustive search at three).
//
// The search runs on the pruned/cached CsdEvaluator engine by default (see
// csd_evaluator.h); ComputeBreakdownReference runs the identical search on
// the naive engine (a fresh CsdFeasible per query) and must return identical
// results — the golden-equivalence tests enforce this. docs/analysis.md
// describes the engine architecture and its pruning invariants.

#ifndef SRC_ANALYSIS_BREAKDOWN_H_
#define SRC_ANALYSIS_BREAKDOWN_H_

#include <vector>

#include "src/analysis/csd_evaluator.h"
#include "src/analysis/overhead.h"
#include "src/analysis/sched_test.h"
#include "src/workload/workload.h"

namespace emeralds {

struct PolicySpec {
  enum class Kind { kEdf, kRm, kRmHeap, kCsd };
  Kind kind = Kind::kEdf;
  int csd_queues = 2;  // x in CSD-x (>= 2)

  static PolicySpec Edf() { return {Kind::kEdf, 0}; }
  static PolicySpec Rm() { return {Kind::kRm, 0}; }
  static PolicySpec RmHeap() { return {Kind::kRmHeap, 0}; }
  static PolicySpec Csd(int queues) { return {Kind::kCsd, queues}; }

  const char* Name() const;
};

struct BreakdownResult {
  double utilization = 0.0;
  // CSD only: the winning queue sizes (DP queues first, FP last).
  std::vector<int> partition;
};

struct BreakdownOptions {
  // Bisection resolution in utilization units.
  double precision = 0.002;
  // Force exhaustive partition search for CSD-4+ (CSD-2/3 are always
  // exhaustive, as in the paper).
  bool exhaustive = false;
  // Budget on split tuples considered by the hill-climbing CSD-4+ search.
  int max_hill_evals = 500;
  // Optional warm start for the CSD-4+ hill climb: the breakdown result of
  // CSD-(x-1) for the SAME workload and cost model. When set, the search
  // seeds from its winning partition instead of recomputing the whole
  // CSD-(x-1) breakdown internally — the harness threads the CSD-3 result
  // into CSD-4 this way, halving the per-workload search cost. Ignored for
  // exhaustive searches. Must outlive the call.
  const BreakdownResult* csd_seed = nullptr;
  // Optional: evaluation counters are accumulated (+=) into this struct,
  // including any internal CSD-(x-1) seeding recursion.
  CsdSearchStats* stats = nullptr;
};

BreakdownResult ComputeBreakdown(const TaskSet& sorted_tasks, PolicySpec policy,
                                 const CostModel& cost, const BreakdownOptions& options = {});

// The retained naive reference: the identical search driven by fresh
// CsdFeasible calls with no pruning, memoization, or table reuse. Exists so
// golden-equivalence tests and the benchmark reports can compare results and
// evaluation counts against the optimized engine; results must match
// ComputeBreakdown exactly.
BreakdownResult ComputeBreakdownReference(const TaskSet& sorted_tasks, PolicySpec policy,
                                          const CostModel& cost,
                                          const BreakdownOptions& options = {});

// Best CSD allocation at a fixed scale (the paper's 2-3 minute off-line
// search, exposed for workload configuration and the examples). Returns an
// empty vector when no allocation is feasible. Exhaustive for queues <= 3;
// for queues >= 4 with exhaustive == false, a hill climb seeded from the
// best CSD-(queues-1) allocation replaces the O(n^(queues-1)) enumeration.
// Optional `stats` accumulates evaluation counters.
std::vector<int> BestCsdPartition(const TaskSet& sorted_tasks, int queues, double scale,
                                  const CostModel& cost, bool exhaustive = true,
                                  CsdSearchStats* stats = nullptr);

}  // namespace emeralds

#endif  // SRC_ANALYSIS_BREAKDOWN_H_
