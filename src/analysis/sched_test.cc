#include "src/analysis/sched_test.h"

#include <algorithm>
#include <cmath>

#include "src/base/assert.h"
#include "src/base/math.h"

namespace emeralds {
namespace {

int64_t ScaledCost(const PeriodicTask& task, double scale, Duration overhead) {
  double c = static_cast<double>(task.wcet.nanos()) * scale;
  return static_cast<int64_t>(c + 0.5) + overhead.nanos();
}

}  // namespace

bool ResponseTimeWithin(int64_t own_cost_ns, int64_t deadline_ns,
                        const std::vector<std::pair<int64_t, int64_t>>& interferers) {
  int64_t response = own_cost_ns;
  for (int iter = 0; iter < kMaxBusyIterations; ++iter) {
    int64_t next = own_cost_ns;
    for (const auto& [cost, period] : interferers) {
      next += CeilDiv(response, period) * cost;
    }
    if (next > deadline_ns) {
      return false;
    }
    if (next == response) {
      return true;
    }
    response = next;
  }
  return false;  // no convergence within budget: treat as infeasible
}

bool EdfFeasible(const TaskSet& tasks, double scale, const OverheadModel& model) {
  int n = tasks.size();
  if (n == 0) {
    return true;
  }
  Duration overhead = model.EdfTaskOverhead(n);
  double u = 0.0;
  for (const PeriodicTask& task : tasks.tasks) {
    u += static_cast<double>(ScaledCost(task, scale, overhead)) /
         static_cast<double>(task.period.nanos());
  }
  return u <= 1.0;
}

bool RmFeasible(const TaskSet& sorted_tasks, double scale, const OverheadModel& model,
                bool heap) {
  EM_ASSERT(sorted_tasks.IsSortedByPeriod());
  int n = sorted_tasks.size();
  if (n == 0) {
    return true;
  }
  Duration overhead = model.RmTaskOverhead(n, heap);
  std::vector<std::pair<int64_t, int64_t>> higher;
  higher.reserve(n);
  for (int i = 0; i < n; ++i) {
    const PeriodicTask& task = sorted_tasks.tasks[i];
    int64_t cost = ScaledCost(task, scale, overhead);
    if (!ResponseTimeWithin(cost, task.deadline.nanos(), higher)) {
      return false;
    }
    higher.emplace_back(cost, task.period.nanos());
  }
  return true;
}

bool CsdFeasible(const TaskSet& sorted_tasks, const std::vector<int>& band_sizes, double scale,
                 const OverheadModel& model) {
  EM_ASSERT(sorted_tasks.IsSortedByPeriod());
  EM_ASSERT(!band_sizes.empty());
  int n = sorted_tasks.size();
  int total = 0;
  for (int s : band_sizes) {
    EM_ASSERT(s >= 0);
    total += s;
  }
  EM_ASSERT_MSG(total == n, "partition covers %d of %d tasks", total, n);

  int num_dp = static_cast<int>(band_sizes.size()) - 1;
  std::vector<int> dp_lengths(band_sizes.begin(), band_sizes.end() - 1);
  int fp_length = band_sizes.back();

  // Inflated cost per task, by band.
  std::vector<int64_t> cost_ns(n);
  {
    int index = 0;
    for (int band = 0; band < num_dp; ++band) {
      Duration overhead = band_sizes[band] > 0
                              ? model.CsdTaskOverhead(dp_lengths, fp_length, band)
                              : Duration();
      for (int k = 0; k < band_sizes[band]; ++k, ++index) {
        cost_ns[index] = ScaledCost(sorted_tasks.tasks[index], scale, overhead);
      }
    }
    Duration fp_overhead =
        fp_length > 0 ? model.CsdTaskOverhead(dp_lengths, fp_length, -1) : Duration();
    for (int k = 0; k < fp_length; ++k, ++index) {
      cost_ns[index] = ScaledCost(sorted_tasks.tasks[index], scale, fp_overhead);
    }
  }

  // --- DP bands: cumulative-utilization checks (the naive O(n) rescans the
  // CsdEvaluator replaces with prefix sums) ---
  int band_start = 0;
  for (int band = 0; band < num_dp; ++band) {
    int band_end = band_start + band_sizes[band];
    if (band_sizes[band] == 0) {
      continue;
    }
    // Utilization of bands 0..band must stay below 1 (necessary, and
    // sufficient for the top band which is plain EDF at highest priority).
    double u = 0.0;
    for (int i = 0; i < band_end; ++i) {
      u += static_cast<double>(cost_ns[i]) /
           static_cast<double>(sorted_tasks.tasks[i].period.nanos());
    }
    if (u > 1.0) {
      return false;
    }
    band_start = band_end;
  }

  return CsdDemandAndRtaFeasible(sorted_tasks, band_sizes, cost_ns);
}

bool CsdDemandAndRtaFeasible(const TaskSet& sorted_tasks, const std::vector<int>& band_sizes,
                             const std::vector<int64_t>& cost_ns) {
  int num_dp = static_cast<int>(band_sizes.size()) - 1;

  int band_start = 0;
  for (int band = 0; band < num_dp; ++band) {
    int band_end = band_start + band_sizes[band];
    if (band_sizes[band] == 0) {
      continue;
    }
    if (band_start > 0) {
      // Lower DP band: processor-demand test with request-bound interference
      // from the higher DP bands.
      // Busy window for bands 0..band.
      int64_t window = 0;
      for (int i = 0; i < band_end; ++i) {
        window += cost_ns[i];
      }
      int64_t max_period = 0;
      for (int i = band_start; i < band_end; ++i) {
        max_period = std::max(max_period, sorted_tasks.tasks[i].period.nanos());
      }
      int64_t window_cap = 50 * max_period;
      bool converged = false;
      for (int iter = 0; iter < kMaxBusyIterations; ++iter) {
        int64_t next = 0;
        for (int i = 0; i < band_end; ++i) {
          next += CeilDiv(window, sorted_tasks.tasks[i].period.nanos()) * cost_ns[i];
        }
        if (next > window_cap) {
          return false;  // conservative: window exploded
        }
        if (next == window) {
          converged = true;
          break;
        }
        window = next;
      }
      if (!converged) {
        return false;
      }
      // Test points: absolute deadlines of this band's tasks within the
      // window.
      std::vector<int64_t> points;
      for (int i = band_start; i < band_end; ++i) {
        int64_t period = sorted_tasks.tasks[i].period.nanos();
        int64_t deadline = sorted_tasks.tasks[i].deadline.nanos();
        for (int64_t d = deadline; d <= window; d += period) {
          points.push_back(d);
          if (points.size() > kMaxDemandPoints) {
            return false;  // conservative
          }
        }
      }
      std::sort(points.begin(), points.end());
      points.erase(std::unique(points.begin(), points.end()), points.end());
      for (int64_t t : points) {
        int64_t demand = 0;
        for (int i = band_start; i < band_end; ++i) {
          int64_t period = sorted_tasks.tasks[i].period.nanos();
          int64_t deadline = sorted_tasks.tasks[i].deadline.nanos();
          if (t >= deadline) {
            demand += (FloorDiv(t - deadline, period) + 1) * cost_ns[i];
          }
        }
        for (int i = 0; i < band_start; ++i) {
          demand += CeilDiv(t, sorted_tasks.tasks[i].period.nanos()) * cost_ns[i];
        }
        if (demand > t) {
          return false;
        }
      }
    }
    band_start = band_end;
  }

  // --- FP band: response-time analysis ---
  return CsdFpRtaFeasible(sorted_tasks, band_start, cost_ns);
}

bool CsdFpRtaFeasible(const TaskSet& sorted_tasks, int fp_start,
                      const std::vector<int64_t>& cost_ns) {
  int n = sorted_tasks.size();
  std::vector<std::pair<int64_t, int64_t>> interferers;
  interferers.reserve(n);
  for (int i = 0; i < fp_start; ++i) {
    interferers.emplace_back(cost_ns[i], sorted_tasks.tasks[i].period.nanos());
  }
  for (int i = fp_start; i < n; ++i) {
    if (!ResponseTimeWithin(cost_ns[i], sorted_tasks.tasks[i].deadline.nanos(), interferers)) {
      return false;
    }
    interferers.emplace_back(cost_ns[i], sorted_tasks.tasks[i].period.nanos());
  }
  return true;
}

}  // namespace emeralds
