// Minimal work-stealing-free parallel map for the evaluation harnesses (the
// 500-workload breakdown sweeps are embarrassingly parallel).

#ifndef SRC_ANALYSIS_PARALLEL_H_
#define SRC_ANALYSIS_PARALLEL_H_

#include <atomic>
#include <thread>
#include <vector>

namespace emeralds {

// Invokes fn(i) for i in [0, count) across up to `threads` workers (0 = one
// per hardware core). fn must be thread-safe across distinct indices.
template <typename Fn>
void ParallelFor(int count, Fn&& fn, unsigned threads = 0) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 4;
    }
  }
  if (count <= 1 || threads == 1) {
    for (int i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<int> next{0};
  auto worker = [&]() {
    for (;;) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  unsigned spawn = std::min<unsigned>(threads, static_cast<unsigned>(count));
  pool.reserve(spawn);
  for (unsigned i = 0; i < spawn; ++i) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

}  // namespace emeralds

#endif  // SRC_ANALYSIS_PARALLEL_H_
