// Minimal work-stealing-free parallel map for the evaluation harnesses (the
// 500-workload breakdown sweeps are embarrassingly parallel).

#ifndef SRC_ANALYSIS_PARALLEL_H_
#define SRC_ANALYSIS_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace emeralds {

// Invokes fn(i) for i in [0, count) across up to `threads` workers (0 = one
// per hardware core). fn must be thread-safe across distinct indices.
//
// Workers claim `chunk` consecutive indices per fetch_add. The default of 1
// load-balances well when iterations are expensive and uneven (the breakdown
// sweeps); raise it for cheap uniform iterations so neighboring indices —
// which usually write neighboring results — stay on one worker instead of
// ping-ponging a shared cache line between cores. Callers whose per-index
// results are smaller than a cache line should also pad them (see the
// harness's alignas(64) rows).
template <typename Fn>
void ParallelFor(int count, Fn&& fn, unsigned threads = 0, int chunk = 1) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 4;
    }
  }
  if (chunk < 1) {
    chunk = 1;
  }
  if (count <= 1 || threads == 1) {
    for (int i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<int> next{0};
  auto worker = [&]() {
    for (;;) {
      int begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) {
        return;
      }
      int end = std::min(count, begin + chunk);
      for (int i = begin; i < end; ++i) {
        fn(i);
      }
    }
  };
  std::vector<std::thread> pool;
  unsigned spawn = std::min<unsigned>(
      threads, static_cast<unsigned>((count + chunk - 1) / chunk));
  pool.reserve(spawn);
  for (unsigned i = 0; i < spawn; ++i) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

}  // namespace emeralds

#endif  // SRC_ANALYSIS_PARALLEL_H_
