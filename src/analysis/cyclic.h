// Cyclic-executive schedule construction — the baseline Section 5 argues
// against.
//
// "Until recently, embedded application programmers have primarily used
// cyclic time-slice scheduling techniques in which the entire execution
// schedule is calculated off-line." The paper lists three weaknesses, which
// this module makes measurable:
//   1. off-line construction is heuristic and rejects feasible workloads,
//   2. high-priority aperiodic work waits for frame boundaries,
//   3. workloads mixing short/long or relatively-prime periods produce very
//      large time-slice tables, "wasting scarce memory resources".
//
// The builder follows the classic frame-based recipe: hyperperiod H = lcm of
// periods; frame size f must divide H, hold the longest job (f >= max c), and
// satisfy the containment condition 2f - gcd(f, P_i) <= D_i for every task;
// jobs are packed into their allowed frames in EDF order with splitting.
// Any failure (no valid frame size, hyperperiod/table blow-up, packing
// failure) rejects the workload — exactly the non-optimality the paper
// describes.

#ifndef SRC_ANALYSIS_CYCLIC_H_
#define SRC_ANALYSIS_CYCLIC_H_

#include <cstdint>
#include <vector>

#include "src/base/time.h"
#include "src/workload/workload.h"

namespace emeralds {

enum class CyclicReject {
  kNone = 0,
  kOverUtilized,       // sum c_i/P_i > 1
  kHyperperiodTooBig,  // lcm of periods exceeds the build limit
  kNoValidFrameSize,   // no divisor of H satisfies the frame conditions
  kTableTooBig,        // frame count exceeds the memory limit
  kPackingFailed,      // the (heuristic) job packing could not place a job
};

const char* CyclicRejectToString(CyclicReject reject);

struct CyclicSlice {
  int task = -1;
  int64_t duration_us = 0;
};

struct CyclicScheduleOptions {
  int64_t max_hyperperiod_us = 500LL * 1000 * 1000;  // 500 s
  int64_t max_frames = 1 << 20;
  double scale = 1.0;  // execution-time scaling, as in the breakdown search
};

struct CyclicSchedule {
  bool feasible = false;
  CyclicReject reject = CyclicReject::kNone;

  int64_t hyperperiod_us = 0;
  int64_t frame_us = 0;
  int64_t frame_count = 0;

  // The materialized time-slice table (frame -> ordered slices).
  std::vector<std::vector<CyclicSlice>> frames;

  // Table footprint: one entry per slice. A real deployment stores at least
  // a task id and a duration per entry (~6 bytes on the paper's targets).
  int64_t table_entries = 0;
  int64_t TableBytes() const { return table_entries * 6; }

  // Worst-case delay before an aperiodic request first gets CPU when served
  // in frame slack: it can arrive just after a frame's dispatch decisions
  // and must wait for the next boundary plus that frame's load (bounded by
  // 2f). Priority-driven scheduling bounds this by a context switch instead.
  Duration WorstAperiodicStartDelay() const {
    return Microseconds(2 * frame_us);
  }
};

// Builds the cyclic schedule for `tasks` (sorted or not). Execution times
// are rounded up to whole microseconds.
CyclicSchedule BuildCyclicSchedule(const TaskSet& tasks,
                                   const CyclicScheduleOptions& options = {});

// Breakdown analogue for the comparison harness: the largest utilization at
// which the workload still builds, found by bisection on `scale`.
double CyclicBreakdownUtilization(const TaskSet& tasks,
                                  const CyclicScheduleOptions& options = {},
                                  double precision = 0.002);

}  // namespace emeralds

#endif  // SRC_ANALYSIS_CYCLIC_H_
