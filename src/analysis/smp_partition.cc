#include "src/analysis/smp_partition.h"

#include <algorithm>
#include <numeric>

#include "src/base/assert.h"

namespace emeralds {

SmpPartitionResult PartitionCsdSmp(const TaskSet& sorted_tasks, int num_cores, int queues,
                                   double scale, const CostModel& cost, CsdSearchStats* stats) {
  EM_ASSERT(num_cores >= 1);
  EM_ASSERT(sorted_tasks.IsSortedByPeriod());

  SmpPartitionResult out;
  out.assignment.assign(sorted_tasks.tasks.size(), -1);
  out.cores.resize(num_cores);
  out.packed = true;

  // Stage 1: first-fit decreasing by scaled utilization. stable_sort keeps
  // equal-utilization tasks in period order, so the pack is deterministic.
  std::vector<int> order(sorted_tasks.tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return sorted_tasks.tasks[a].utilization() > sorted_tasks.tasks[b].utilization();
  });
  for (int idx : order) {
    const double u = sorted_tasks.tasks[idx].utilization() * scale;
    int chosen = -1;
    for (int c = 0; c < num_cores; ++c) {
      if (out.cores[c].utilization + u <= 1.0) {
        chosen = c;
        break;
      }
    }
    if (chosen < 0) {
      // No bin has room: the pack failed, but keep the assignment total by
      // dumping the task on the least-loaded core so the per-core admission
      // below still reports a complete picture.
      out.packed = false;
      chosen = 0;
      for (int c = 1; c < num_cores; ++c) {
        if (out.cores[c].utilization < out.cores[chosen].utilization) {
          chosen = c;
        }
      }
    }
    out.assignment[idx] = chosen;
    out.cores[chosen].utilization += u;
  }

  // Rebuild each core's subset in original (period-sorted) order so the
  // per-core search matches a single-core search over the same tasks.
  for (size_t i = 0; i < sorted_tasks.tasks.size(); ++i) {
    SmpCoreAdmission& core = out.cores[out.assignment[i]];
    core.tasks.tasks.push_back(sorted_tasks.tasks[i]);
    core.task_indices.push_back(static_cast<int>(i));
  }

  // Stage 2: the unchanged single-core CSD-x admission, per core.
  out.feasible = out.packed;
  for (SmpCoreAdmission& core : out.cores) {
    if (core.tasks.tasks.empty()) {
      core.feasible = true;  // nothing to schedule
      continue;
    }
    core.csd_partition =
        BestCsdPartition(core.tasks, queues, scale, cost, /*exhaustive=*/queues <= 3, stats);
    core.feasible = !core.csd_partition.empty();
    if (!core.feasible) {
      out.feasible = false;
    }
  }
  return out;
}

}  // namespace emeralds
