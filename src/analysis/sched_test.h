// Overhead-aware schedulability tests (the paper's reference [36] machinery,
// reconstructed with standard analyses).
//
//  * EDF:   utilization test (exact for deadline == period) on costs inflated
//           by the per-period scheduler overhead.
//  * RM:    response-time analysis with inflated costs.
//  * CSD-x: hierarchical test. The top DP queue is plain EDF (utilization
//           test). Lower DP queues use a processor-demand test with
//           request-bound interference from the higher queues (sufficient).
//           The FP queue uses response-time analysis with every DP task as
//           higher-priority interference.
//
// Tasks must be sorted shortest-period-first; a CSD partition assigns the
// first band_sizes[0] tasks to DP1, the next band_sizes[1] to DP2, ..., and
// the final band_sizes.back() tasks to the FP queue (the paper's allocation:
// the troublesome short-period tasks go to the dynamic queues).

#ifndef SRC_ANALYSIS_SCHED_TEST_H_
#define SRC_ANALYSIS_SCHED_TEST_H_

#include <vector>

#include "src/analysis/overhead.h"
#include "src/workload/workload.h"

namespace emeralds {

// Scale factor applied to execution times (the breakdown search's knob).
bool EdfFeasible(const TaskSet& tasks, double scale, const OverheadModel& model);

bool RmFeasible(const TaskSet& sorted_tasks, double scale, const OverheadModel& model,
                bool heap = false);

// band_sizes.size() == number of CSD queues (>= 1); the last entry is the FP
// queue. Entries may be zero. Sum must equal the task count.
bool CsdFeasible(const TaskSet& sorted_tasks, const std::vector<int>& band_sizes, double scale,
                 const OverheadModel& model);

// Shared helper: response-time analysis for one task given higher-priority
// interferers (costs in nanoseconds). Returns false on divergence past the
// deadline.
bool ResponseTimeWithin(int64_t own_cost_ns, int64_t deadline_ns,
                        const std::vector<std::pair<int64_t, int64_t>>& interferers);

}  // namespace emeralds

#endif  // SRC_ANALYSIS_SCHED_TEST_H_
