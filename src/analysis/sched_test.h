// Overhead-aware schedulability tests (the paper's reference [36] machinery,
// reconstructed with standard analyses).
//
//  * EDF:   utilization test (exact for deadline == period) on costs inflated
//           by the per-period scheduler overhead.
//  * RM:    response-time analysis with inflated costs.
//  * CSD-x: hierarchical test. The top DP queue is plain EDF (utilization
//           test). Lower DP queues use a processor-demand test with
//           request-bound interference from the higher queues (sufficient).
//           The FP queue uses response-time analysis with every DP task as
//           higher-priority interference.
//
// Tasks must be sorted shortest-period-first; a CSD partition assigns the
// first band_sizes[0] tasks to DP1, the next band_sizes[1] to DP2, ..., and
// the final band_sizes.back() tasks to the FP queue (the paper's allocation:
// the troublesome short-period tasks go to the dynamic queues).

#ifndef SRC_ANALYSIS_SCHED_TEST_H_
#define SRC_ANALYSIS_SCHED_TEST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/analysis/overhead.h"
#include "src/workload/workload.h"

namespace emeralds {

// Scale factor applied to execution times (the breakdown search's knob).
bool EdfFeasible(const TaskSet& tasks, double scale, const OverheadModel& model);

bool RmFeasible(const TaskSet& sorted_tasks, double scale, const OverheadModel& model,
                bool heap = false);

// band_sizes.size() == number of CSD queues (>= 1); the last entry is the FP
// queue. Entries may be zero. Sum must equal the task count.
bool CsdFeasible(const TaskSet& sorted_tasks, const std::vector<int>& band_sizes, double scale,
                 const OverheadModel& model);

// Conservative caps for the iterative analyses: when the busy window (or the
// number of processor-demand test points) explodes, the set is declared
// infeasible. This only triggers with total utilization very close to 1,
// where the breakdown search is within its precision anyway. Shared between
// the reference tests here and the optimized CsdEvaluator.
inline constexpr int kMaxBusyIterations = 256;
inline constexpr size_t kMaxDemandPoints = 200000;

// The busy-window / processor-demand / response-time portion of CsdFeasible,
// given the final per-task inflated costs (execution time at the probed scale
// plus the per-band scheduler overhead). All arithmetic is on int64
// nanoseconds, so any caller producing identical costs gets identical
// verdicts — the optimized CsdEvaluator builds costs from precomputed tables
// and shares this exact logic. The per-band cumulative-utilization checks are
// NOT included (CsdFeasible rescans for them; the evaluator uses prefix
// sums).
bool CsdDemandAndRtaFeasible(const TaskSet& sorted_tasks, const std::vector<int>& band_sizes,
                             const std::vector<int64_t>& cost_ns);

// The FP band's response-time stage alone (the final stage of
// CsdDemandAndRtaFeasible): tasks fp_start..n-1 against interference from
// every task above them. All-int64, so any caller with identical costs gets
// the identical verdict; the optimized engine runs it as an exact prefilter
// before paying the processor-demand stage.
bool CsdFpRtaFeasible(const TaskSet& sorted_tasks, int fp_start,
                      const std::vector<int64_t>& cost_ns);

// Shared helper: response-time analysis for one task given higher-priority
// interferers (costs in nanoseconds). Returns false on divergence past the
// deadline.
bool ResponseTimeWithin(int64_t own_cost_ns, int64_t deadline_ns,
                        const std::vector<std::pair<int64_t, int64_t>>& interferers);

}  // namespace emeralds

#endif  // SRC_ANALYSIS_SCHED_TEST_H_
