#include "src/analysis/cyclic.h"

#include <algorithm>

#include "src/base/assert.h"
#include "src/base/math.h"

namespace emeralds {
namespace {

struct Job {
  int task;
  int64_t release_us;
  int64_t deadline_us;
  int64_t remaining_us;
};

}  // namespace

const char* CyclicRejectToString(CyclicReject reject) {
  switch (reject) {
    case CyclicReject::kNone:
      return "none";
    case CyclicReject::kOverUtilized:
      return "over-utilized";
    case CyclicReject::kHyperperiodTooBig:
      return "hyperperiod too large";
    case CyclicReject::kNoValidFrameSize:
      return "no valid frame size";
    case CyclicReject::kTableTooBig:
      return "schedule table too large";
    case CyclicReject::kPackingFailed:
      return "job packing failed";
  }
  return "?";
}

CyclicSchedule BuildCyclicSchedule(const TaskSet& tasks, const CyclicScheduleOptions& options) {
  CyclicSchedule schedule;
  int n = tasks.size();
  if (n == 0) {
    schedule.feasible = true;
    return schedule;
  }

  // Scaled whole-microsecond task parameters.
  std::vector<int64_t> period_us(n);
  std::vector<int64_t> deadline_us(n);
  std::vector<int64_t> cost_us(n);
  double utilization = 0.0;
  int64_t max_cost = 0;
  for (int i = 0; i < n; ++i) {
    period_us[i] = tasks.tasks[i].period.micros();
    deadline_us[i] = tasks.tasks[i].deadline.micros();
    EM_ASSERT_MSG(period_us[i] > 0, "cyclic schedule needs periodic tasks");
    double c = static_cast<double>(tasks.tasks[i].wcet.nanos()) * options.scale;
    cost_us[i] = (static_cast<int64_t>(c + 0.5) + 999) / 1000;
    cost_us[i] = std::max<int64_t>(cost_us[i], 1);
    utilization += static_cast<double>(cost_us[i]) / static_cast<double>(period_us[i]);
    max_cost = std::max(max_cost, cost_us[i]);
  }
  if (utilization > 1.0) {
    schedule.reject = CyclicReject::kOverUtilized;
    return schedule;
  }

  // Hyperperiod (weakness 3: relatively-prime periods blow this up).
  int64_t hyper = 1;
  for (int i = 0; i < n; ++i) {
    hyper = LcmSaturating(hyper, period_us[i]);
    if (hyper > options.max_hyperperiod_us) {
      schedule.reject = CyclicReject::kHyperperiodTooBig;
      return schedule;
    }
  }
  schedule.hyperperiod_us = hyper;

  // Largest divisor of H satisfying the frame containment condition
  // 2f - gcd(f, P_i) <= D_i for every task. The textbook recipe also demands
  // f >= max c_i (frames are non-preemptive); we grant the baseline the
  // manual job slicing real deployments do, since the packer below splits
  // jobs across their allowed frames anyway.
  int64_t best_frame = 0;
  auto frame_ok = [&](int64_t f) {
    for (int i = 0; i < n; ++i) {
      if (2 * f - Gcd(f, period_us[i]) > deadline_us[i]) {
        return false;
      }
    }
    return true;
  };
  for (int64_t d = 1; d * d <= hyper; ++d) {
    if (hyper % d != 0) {
      continue;
    }
    if (frame_ok(d)) {
      best_frame = std::max(best_frame, d);
    }
    if (frame_ok(hyper / d)) {
      best_frame = std::max(best_frame, hyper / d);
    }
  }
  if (best_frame == 0) {
    schedule.reject = CyclicReject::kNoValidFrameSize;
    return schedule;
  }
  schedule.frame_us = best_frame;
  schedule.frame_count = hyper / best_frame;
  if (schedule.frame_count > options.max_frames) {
    schedule.reject = CyclicReject::kTableTooBig;
    return schedule;
  }

  // Enumerate all jobs in the hyperperiod and pack them EDF-first into their
  // allowed frames (frame fully inside [release, deadline]), splitting across
  // frames where needed. Greedy and therefore heuristic — weakness 1.
  std::vector<Job> jobs;
  for (int i = 0; i < n; ++i) {
    for (int64_t r = 0; r < hyper; r += period_us[i]) {
      jobs.push_back(Job{i, r, r + deadline_us[i], cost_us[i]});
    }
  }
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.deadline_us != b.deadline_us) {
      return a.deadline_us < b.deadline_us;
    }
    if (a.release_us != b.release_us) {
      return a.release_us < b.release_us;
    }
    return a.task < b.task;
  });

  schedule.frames.assign(static_cast<size_t>(schedule.frame_count), {});
  std::vector<int64_t> slack(static_cast<size_t>(schedule.frame_count), best_frame);
  for (const Job& job : jobs) {
    int64_t first = CeilDiv(job.release_us, best_frame);
    int64_t last = FloorDiv(job.deadline_us, best_frame) - 1;  // frame end <= deadline
    int64_t remaining = job.remaining_us;
    for (int64_t k = first; k <= last && remaining > 0; ++k) {
      if (slack[k] == 0) {
        continue;
      }
      int64_t piece = std::min(remaining, slack[k]);
      slack[k] -= piece;
      remaining -= piece;
      schedule.frames[k].push_back(CyclicSlice{job.task, piece});
      ++schedule.table_entries;
    }
    if (remaining > 0) {
      schedule.reject = CyclicReject::kPackingFailed;
      schedule.frames.clear();
      schedule.table_entries = 0;
      return schedule;
    }
  }
  schedule.feasible = true;
  return schedule;
}

double CyclicBreakdownUtilization(const TaskSet& tasks, const CyclicScheduleOptions& options,
                                  double precision) {
  double raw = tasks.Utilization();
  if (raw <= 0.0) {
    return 0.0;
  }
  CyclicScheduleOptions probe = options;
  auto feasible = [&](double scale) {
    probe.scale = scale;
    return BuildCyclicSchedule(tasks, probe).feasible;
  };
  double lo = 0.0;
  double hi = 1.02 / raw;
  if (feasible(hi)) {
    return hi * raw;  // cannot exceed utilization 1 anyway
  }
  double step = precision / raw;
  while (hi - lo > step) {
    double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo * raw;
}

}  // namespace emeralds
