// Scheduler run-time overhead model (Section 5.1, Tables 1 and 3).
//
// Each task blocks and unblocks at least once per period; with half the tasks
// assumed to make one extra blocking call per period, the average per-period
// scheduler overhead is t = 1.5 (t_b + t_u + 2 t_s). The t_b / t_u / t_s
// values come from the cost model's Table 1 fits evaluated at worst-case
// operation counts for the queue structure holding the task; CSD adds the
// 0.55 us/queue parse cost to every selection.

#ifndef SRC_ANALYSIS_OVERHEAD_H_
#define SRC_ANALYSIS_OVERHEAD_H_

#include <vector>

#include "src/base/time.h"
#include "src/hal/cost_model.h"

namespace emeralds {

class OverheadModel {
 public:
  explicit OverheadModel(const CostModel& cost) : cost_(cost) {}

  // Pure EDF with an n-task unsorted queue.
  Duration EdfTaskOverhead(int n) const;
  // Pure RM: sorted list, or the Table 1 comparison heap.
  Duration RmTaskOverhead(int n, bool heap = false) const;

  // CSD-x (x = dp_lengths.size() + 1 queues). `dp_lengths` are the DP queue
  // sizes in priority order, `fp_length` the FP queue size. Returns the
  // per-period overhead for a task in DP queue `dp_index`, or in the FP
  // queue when dp_index < 0. Matches Table 3's operation counts:
  //   * DP task blocks:   t_b O(1),        t_s = worst DP queue parse
  //   * DP task unblocks: t_u O(1),        t_s = its own queue parse
  //   * FP task blocks:   t_b O(n - r),    t_s O(1) (no DP task can be ready)
  //   * FP task unblocks: t_u O(1),        t_s = worst DP queue parse
  Duration CsdTaskOverhead(const std::vector<int>& dp_lengths, int fp_length,
                           int dp_index) const;

  // Provable lower bounds on CsdTaskOverhead over every x-queue partition
  // that places `dp_total` tasks in the DP queues (and, for the FP variant,
  // `fp_length` tasks in the FP queue). The partition search's pruning
  // bounds combine these with scaled execution times to reject split tuples
  // without running a full schedulability test: since real overheads can
  // only be larger, a workload infeasible at the lower bound is infeasible,
  // period. The bounds are tight in everything except how the DP tasks split
  // across queues: by pigeonhole the longest DP queue holds at least
  // ceil(dp_total/(x-1)) tasks, which lower-bounds the worst DP selection
  // cost every blocking task pays; the Table 1 fits are linear, so each
  // component's minimum over a queue-length interval sits at an endpoint.
  Duration CsdDpOverheadLowerBound(int x, int dp_total) const;
  Duration CsdFpOverheadLowerBound(int x, int dp_total, int fp_length) const;

  const CostModel& cost() const { return cost_; }

 private:
  Duration Cost(QueueKind kind, QueueOp op, int units) const {
    return cost_.QueueCost(kind, op, units);
  }
  // Table 1's worst-case unit counts for an n-element structure.
  static int WorstUnits(QueueKind kind, QueueOp op, int n);

  CostModel cost_;
};

}  // namespace emeralds

#endif  // SRC_ANALYSIS_OVERHEAD_H_
