#include "src/analysis/csd_evaluator.h"

#include <algorithm>

#include "src/base/assert.h"
#include "src/base/math.h"

namespace emeralds {
namespace {

// Tolerance for the floating-point utilization lower bounds: the prefix-sum
// accumulation and the reference's sequential rescan associate differently,
// so pruning requires clearing 1.0 by more than the worst-case rounding gap.
constexpr double kUtilSlack = 1e-9;

int64_t BaseScaledCost(const PeriodicTask& task, double scale) {
  // Must match ScaledCost in sched_test.cc bit-for-bit (same product, same
  // rounding) so evaluator costs equal reference costs exactly.
  double c = static_cast<double>(task.wcet.nanos()) * scale;
  return static_cast<int64_t>(c + 0.5);
}

}  // namespace

std::vector<int> CsdSizesFromSplits(const std::vector<int>& splits, int n) {
  std::vector<int> sizes;
  sizes.reserve(splits.size() + 1);
  int prev = 0;
  for (int s : splits) {
    sizes.push_back(s - prev);
    prev = s;
  }
  sizes.push_back(n - prev);
  return sizes;
}

bool NaiveCsdEngine::Feasible(const std::vector<int>& splits, double scale) {
  ++stats_->full_evals;
  return CsdFeasible(tasks_, CsdSizesFromSplits(splits, n_), scale, model_);
}

CsdEvaluator::CsdEvaluator(const TaskSet& sorted_tasks, int queues, const OverheadModel& model,
                           CsdSearchStats* stats)
    : tasks_(sorted_tasks),
      n_(sorted_tasks.size()),
      x_(queues),
      model_(model),
      stats_(stats) {
  EM_ASSERT(queues >= 2);
  EM_ASSERT(stats != nullptr);
  EM_ASSERT(sorted_tasks.IsSortedByPeriod());
  period_ns_.resize(n_);
  deadline_ns_.resize(n_);
  inv_period_prefix_.assign(n_ + 1, 0.0);
  for (int i = 0; i < n_; ++i) {
    period_ns_[i] = tasks_.tasks[i].period.nanos();
    deadline_ns_[i] = tasks_.tasks[i].deadline.nanos();
    inv_period_prefix_[i + 1] =
        inv_period_prefix_[i] + 1.0 / static_cast<double>(period_ns_[i]);
  }
  base_cost_.resize(n_);
  base_cost_prefix_.assign(n_ + 1, 0);
  base_util_prefix_.assign(n_ + 1, 0.0);
  lb_dp_oh_.assign(n_ + 1, 0);
  lb_fp_oh_.assign(n_ + 1, 0);
  dp_util_lb_.assign(n_ + 1, 0.0);
  dp_util_cut_.assign(n_ + 1, 0.0);
  fp_verdict_.assign(n_ + 1, 0);
  cost_scratch_.resize(n_);
}

void CsdEvaluator::EnsureScaleTables(double scale) {
  if (scale == table_scale_) {
    return;
  }
  for (int i = 0; i < n_; ++i) {
    base_cost_[i] = BaseScaledCost(tasks_.tasks[i], scale);
    base_cost_prefix_[i + 1] = base_cost_prefix_[i] + base_cost_[i];
    base_util_prefix_[i + 1] =
        base_util_prefix_[i] +
        static_cast<double>(base_cost_[i]) / static_cast<double>(period_ns_[i]);
  }
  table_scale_ = scale;
}

void CsdEvaluator::EnsureBoundTables(double scale) {
  if (scale == bound_scale_) {
    return;
  }
  EnsureScaleTables(scale);
  for (int r = 1; r <= n_; ++r) {
    lb_dp_oh_[r] = model_.CsdDpOverheadLowerBound(x_, r).nanos();
  }
  for (int r = 0; r < n_; ++r) {
    lb_fp_oh_[r] = model_.CsdFpOverheadLowerBound(x_, r, n_ - r).nanos();
  }
  for (int r = 0; r <= n_; ++r) {
    dp_util_lb_[r] = base_util_prefix_[r] +
                     static_cast<double>(lb_dp_oh_[r]) * inv_period_prefix_[r];
  }
  // Subtree-cut variant: a partition whose prefix 0..v is all-DP has FP start
  // r >= v, and its real DP utilization over 0..r is at least
  // base_util_prefix_[v] + min_{r' >= v} lb_dp_oh_[r'] * inv_period_prefix_[v]
  // (the suffix-min guards models whose select fit is not monotone in length).
  int64_t suffix_min = lb_dp_oh_[n_];
  for (int v = n_; v >= 1; --v) {
    suffix_min = std::min(suffix_min, lb_dp_oh_[v]);
    dp_util_cut_[v] =
        base_util_prefix_[v] + static_cast<double>(suffix_min) * inv_period_prefix_[v];
  }
  std::fill(fp_verdict_.begin(), fp_verdict_.end(), 0);
  bound_scale_ = scale;
}

bool CsdEvaluator::FpBoundFails(int r) {
  if (fp_verdict_[r] != 0) {
    return fp_verdict_[r] == 2;
  }
  // Response-time analysis for every FP-band task i >= r with lower-bound
  // costs: itself and FP interferers at lb_fp_oh_[r], DP interferers at
  // lb_dp_oh_[r]. A definite deadline overshoot proves the real partition's
  // RTA (with costs at least as large) fails too. Longest-period tasks fail
  // first in practice, so scan from the bottom and stop at the first failure.
  const int64_t dp_oh = r > 0 ? lb_dp_oh_[r] : 0;
  const int64_t fp_oh = lb_fp_oh_[r];
  bool fail = false;
  for (int i = n_ - 1; i >= r && !fail; --i) {
    ++stats_->bound_evals;
    int64_t own = base_cost_[i] + fp_oh;
    int64_t response = own;
    for (int iter = 0; iter < kMaxBusyIterations; ++iter) {
      int64_t next = own;
      for (int j = 0; j < i; ++j) {
        next += CeilDiv(response, period_ns_[j]) * (base_cost_[j] + (j < r ? dp_oh : fp_oh));
      }
      if (next > deadline_ns_[i]) {
        fail = true;
        break;
      }
      if (next == response) {
        break;
      }
      response = next;
      // Non-convergence within the iteration budget is NOT treated as a
      // failure: the reference test might still converge with its larger
      // costs, so only a definite deadline overshoot may prune.
    }
  }
  fp_verdict_[r] = fail ? 2 : 1;
  return fail;
}

bool CsdEvaluator::PrefixProvablyInfeasible(int prefix_end, double scale) {
  EnsureBoundTables(scale);
  return prefix_end > 0 && dp_util_cut_[prefix_end] > 1.0 + kUtilSlack;
}

bool CsdEvaluator::ProvablyInfeasible(const std::vector<int>& splits, double scale) {
  EnsureBoundTables(scale);
  // An interleaved bisection may have moved the scale tables off the probe
  // scale; the lazy FP bound and the exact prefilter read base_cost_.
  EnsureScaleTables(scale);
  int r = splits.back();  // FP band start
  // Cumulative utilization of the DP prefix (with lower-bound overheads)
  // already exceeds 1: the last nonempty DP band's check must fail.
  if (r > 0 && dp_util_lb_[r] > 1.0 + kUtilSlack) {
    return true;
  }
  // Some FP-band task fails response-time analysis even with lower-bound
  // costs for itself and all interference above it.
  if (r < n_ && FpBoundFails(r)) {
    return true;
  }
  // Exact prefilter: with this partition's real band overheads (O(x^2) model
  // calls plus prefix-sum lookups — no per-task rescans), run the full
  // test's utilization stage and its all-int64 FP response-time stage. A
  // failure here is the full test's own verdict on this partition, so it is
  // rejected — and memoized — without paying the processor-demand stage.
  std::vector<int> sizes = CsdSizesFromSplits(splits, n_);
  ++stats_->bound_evals;
  ComputeBandOverheads(sizes);
  bool ok = UtilStageFeasible(sizes);
  if (ok && r < n_) {
    FillCosts(sizes);
    ok = CsdFpRtaFeasible(tasks_, r, cost_scratch_);
  }
  if (!ok) {
    CacheEntry& entry = cache_[splits];
    entry.min_infeasible = std::min(entry.min_infeasible, scale);
    return true;
  }
  return false;
}

bool CsdEvaluator::Feasible(const std::vector<int>& splits, double scale) {
  CacheEntry& entry = cache_[splits];
  if (scale <= entry.max_feasible) {
    ++stats_->cache_hits;
    return true;
  }
  if (scale >= entry.min_infeasible) {
    ++stats_->cache_hits;
    return false;
  }
  bool ok = FullTest(CsdSizesFromSplits(splits, n_), scale);
  ++stats_->full_evals;
  if (ok) {
    entry.max_feasible = scale;
  } else {
    entry.min_infeasible = scale;
  }
  return ok;
}

void CsdEvaluator::ComputeBandOverheads(const std::vector<int>& sizes) {
  // Per-band overhead (identical CsdTaskOverhead calls to the reference).
  int num_dp = static_cast<int>(sizes.size()) - 1;
  dp_lengths_scratch_.assign(sizes.begin(), sizes.end() - 1);
  int fp_length = sizes.back();
  band_oh_.assign(num_dp + 1, 0);
  for (int band = 0; band < num_dp; ++band) {
    if (sizes[band] > 0) {
      band_oh_[band] = model_.CsdTaskOverhead(dp_lengths_scratch_, fp_length, band).nanos();
    }
  }
  if (fp_length > 0) {
    band_oh_[num_dp] = model_.CsdTaskOverhead(dp_lengths_scratch_, fp_length, -1).nanos();
  }
}

bool CsdEvaluator::UtilStageFeasible(const std::vector<int>& sizes) const {
  // Cumulative-utilization checks via prefix sums: the contribution of band b
  // is (sum of base costs / periods over the band) + overhead * (sum of
  // 1/period over the band), accumulated band by band instead of rescanning
  // tasks 0..band_end for every band.
  int num_dp = static_cast<int>(sizes.size()) - 1;
  double u = 0.0;
  int band_start = 0;
  for (int band = 0; band < num_dp; ++band) {
    int band_end = band_start + sizes[band];
    if (sizes[band] == 0) {
      continue;
    }
    u += (base_util_prefix_[band_end] - base_util_prefix_[band_start]) +
         static_cast<double>(band_oh_[band]) *
             (inv_period_prefix_[band_end] - inv_period_prefix_[band_start]);
    if (u > 1.0) {
      return false;
    }
    band_start = band_end;
  }
  return true;
}

void CsdEvaluator::FillCosts(const std::vector<int>& sizes) {
  // Final per-task costs for the demand/response-time stage, shared with the
  // reference implementation (int64 arithmetic: identical costs, identical
  // verdicts).
  int num_dp = static_cast<int>(sizes.size()) - 1;
  int index = 0;
  for (int band = 0; band <= num_dp; ++band) {
    for (int k = 0; k < sizes[band]; ++k, ++index) {
      cost_scratch_[index] = base_cost_[index] + band_oh_[band];
    }
  }
}

bool CsdEvaluator::FullTest(const std::vector<int>& sizes, double scale) {
  EnsureScaleTables(scale);
  ComputeBandOverheads(sizes);
  if (!UtilStageFeasible(sizes)) {
    return false;
  }
  FillCosts(sizes);
  return CsdDemandAndRtaFeasible(tasks_, sizes, cost_scratch_);
}

}  // namespace emeralds
