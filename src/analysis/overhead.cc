#include "src/analysis/overhead.h"

#include "src/base/assert.h"
#include "src/base/math.h"

namespace emeralds {
namespace {

// t = 1.5 (t_b + t_u + t_s_block + t_s_unblock); the paper's formula with the
// two selections spelled out separately (CSD's differ by case).
Duration PerPeriod(Duration t_b, Duration t_u, Duration t_s_block, Duration t_s_unblock) {
  Duration sum = t_b + t_u + t_s_block + t_s_unblock;
  return Duration::FromNanos(sum.nanos() * 3 / 2);
}

}  // namespace

int OverheadModel::WorstUnits(QueueKind kind, QueueOp op, int n) {
  switch (kind) {
    case QueueKind::kEdfList:
      return op == QueueOp::kSelect ? n : 1;
    case QueueKind::kRmList:
      return op == QueueOp::kBlock ? n : 1;
    case QueueKind::kRmHeap:
      return op == QueueOp::kSelect ? 1 : CeilLog2(static_cast<uint64_t>(n) + 1);
  }
  return 1;
}

Duration OverheadModel::EdfTaskOverhead(int n) const {
  EM_ASSERT(n >= 1);
  Duration t_b = Cost(QueueKind::kEdfList, QueueOp::kBlock,
                      WorstUnits(QueueKind::kEdfList, QueueOp::kBlock, n));
  Duration t_u = Cost(QueueKind::kEdfList, QueueOp::kUnblock,
                      WorstUnits(QueueKind::kEdfList, QueueOp::kUnblock, n));
  Duration t_s = Cost(QueueKind::kEdfList, QueueOp::kSelect, n);
  return PerPeriod(t_b, t_u, t_s, t_s);
}

Duration OverheadModel::RmTaskOverhead(int n, bool heap) const {
  EM_ASSERT(n >= 1);
  QueueKind kind = heap ? QueueKind::kRmHeap : QueueKind::kRmList;
  Duration t_b = Cost(kind, QueueOp::kBlock, WorstUnits(kind, QueueOp::kBlock, n));
  Duration t_u = Cost(kind, QueueOp::kUnblock, WorstUnits(kind, QueueOp::kUnblock, n));
  Duration t_s = Cost(kind, QueueOp::kSelect, WorstUnits(kind, QueueOp::kSelect, n));
  return PerPeriod(t_b, t_u, t_s, t_s);
}

Duration OverheadModel::CsdTaskOverhead(const std::vector<int>& dp_lengths, int fp_length,
                                        int dp_index) const {
  int x = static_cast<int>(dp_lengths.size()) + 1;
  // Every selection pays the prioritized queue-list parse (x queues).
  Duration parse = cost_.csd_queue_parse * x;

  // Worst DP selection cost across all DP queues (zero when no DP queue has
  // tasks): the scheduler may have to parse the longest DP queue.
  Duration worst_dp_select;
  for (int len : dp_lengths) {
    if (len > 0) {
      Duration s = Cost(QueueKind::kEdfList, QueueOp::kSelect, len);
      if (s > worst_dp_select) {
        worst_dp_select = s;
      }
    }
  }

  if (dp_index >= 0) {
    EM_ASSERT(dp_index < static_cast<int>(dp_lengths.size()));
    int own = dp_lengths[dp_index];
    EM_ASSERT(own >= 1);
    Duration t_b = Cost(QueueKind::kEdfList, QueueOp::kBlock, 1);
    Duration t_u = Cost(QueueKind::kEdfList, QueueOp::kUnblock, 1);
    Duration t_s_block = worst_dp_select + parse;
    Duration t_s_unblock = Cost(QueueKind::kEdfList, QueueOp::kSelect, own) + parse;
    return PerPeriod(t_b, t_u, t_s_block, t_s_unblock);
  }

  EM_ASSERT(fp_length >= 1);
  Duration t_b = Cost(QueueKind::kRmList, QueueOp::kBlock, fp_length);
  Duration t_u = Cost(QueueKind::kRmList, QueueOp::kUnblock, 1);
  Duration fp_select = Cost(QueueKind::kRmList, QueueOp::kSelect, 1);
  Duration t_s_block = fp_select + parse;
  Duration t_s_unblock =
      (worst_dp_select > fp_select ? worst_dp_select : fp_select) + parse;
  return PerPeriod(t_b, t_u, t_s_block, t_s_unblock);
}

Duration OverheadModel::CsdDpOverheadLowerBound(int x, int dp_total) const {
  EM_ASSERT(x >= 2 && dp_total >= 1);
  Duration parse = cost_.csd_queue_parse * x;
  // The longest DP queue holds at least ceil(dp_total / (x - 1)) tasks, so the
  // worst DP selection every blocking task pays is at least the cheapest
  // select over lengths in [lmin, dp_total] (linear fit: endpoint minimum).
  int lmin = (dp_total + x - 2) / (x - 1);
  Duration worst_lo = Cost(QueueKind::kEdfList, QueueOp::kSelect, lmin);
  Duration worst_hi = Cost(QueueKind::kEdfList, QueueOp::kSelect, dp_total);
  Duration worst_sel = worst_lo < worst_hi ? worst_lo : worst_hi;
  // The task's own queue length ranges over [1, dp_total] — except with a
  // single DP queue, where it is exactly dp_total.
  Duration own_lo = Cost(QueueKind::kEdfList, QueueOp::kSelect, x == 2 ? dp_total : 1);
  Duration own_sel = own_lo < worst_hi ? own_lo : worst_hi;
  Duration t_b = Cost(QueueKind::kEdfList, QueueOp::kBlock, 1);
  Duration t_u = Cost(QueueKind::kEdfList, QueueOp::kUnblock, 1);
  return PerPeriod(t_b, t_u, worst_sel + parse, own_sel + parse);
}

Duration OverheadModel::CsdFpOverheadLowerBound(int x, int dp_total, int fp_length) const {
  EM_ASSERT(x >= 2 && dp_total >= 0 && fp_length >= 1);
  Duration parse = cost_.csd_queue_parse * x;
  // t_b, t_u and the blocking-side selection are exact for this (dp_total,
  // fp_length); only the unblock selection's worst-DP-queue term is bounded.
  Duration t_b = Cost(QueueKind::kRmList, QueueOp::kBlock, fp_length);
  Duration t_u = Cost(QueueKind::kRmList, QueueOp::kUnblock, 1);
  Duration fp_select = Cost(QueueKind::kRmList, QueueOp::kSelect, 1);
  Duration worst_dp;  // zero when the DP queues are empty (exact)
  if (dp_total >= 1) {
    int lmin = (dp_total + x - 2) / (x - 1);
    Duration lo = Cost(QueueKind::kEdfList, QueueOp::kSelect, lmin);
    Duration hi = Cost(QueueKind::kEdfList, QueueOp::kSelect, dp_total);
    worst_dp = lo < hi ? lo : hi;
  }
  Duration t_s_unblock = (worst_dp > fp_select ? worst_dp : fp_select) + parse;
  return PerPeriod(t_b, t_u, fp_select + parse, t_s_unblock);
}

}  // namespace emeralds
