#include "src/analysis/breakdown.h"

#include <algorithm>
#include <functional>

#include "src/base/assert.h"

namespace emeralds {
namespace {

// Converts split points (ascending positions in the sorted task list) into
// band sizes. CSD-2: {r} -> {r, n-r}; CSD-3: {q, r} -> {q, r-q, n-r}; ...
std::vector<int> SizesFromSplits(const std::vector<int>& splits, int n) {
  std::vector<int> sizes;
  sizes.reserve(splits.size() + 1);
  int prev = 0;
  for (int s : splits) {
    sizes.push_back(s - prev);
    prev = s;
  }
  sizes.push_back(n - prev);
  return sizes;
}

class CsdSearch {
 public:
  CsdSearch(const TaskSet& tasks, int queues, const OverheadModel& model, double hi_scale,
            double precision_scale)
      : tasks_(tasks),
        n_(tasks.size()),
        queues_(queues),
        model_(model),
        hi_scale_(hi_scale),
        precision_scale_(precision_scale) {}

  bool Feasible(const std::vector<int>& splits, double scale) {
    ++evals_;
    return CsdFeasible(tasks_, SizesFromSplits(splits, n_), scale, model_);
  }

  // Breakdown scale for one partition, but only if it beats `floor`
  // (returns floor unchanged otherwise). The floor test makes scanning the
  // whole partition space cheap: losers cost one schedulability test.
  double ImproveScale(const std::vector<int>& splits, double floor) {
    double probe = floor <= 0.0 ? precision_scale_ : floor + precision_scale_;
    if (!Feasible(splits, probe)) {
      return floor;
    }
    double lo = probe;
    double hi = hi_scale_;
    while (hi - lo > precision_scale_) {
      double mid = 0.5 * (lo + hi);
      if (Feasible(splits, mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    best_splits_ = splits;
    return lo;
  }

  int evals() const { return evals_; }
  const std::vector<int>& best_splits() const { return best_splits_; }

 private:
  const TaskSet& tasks_;
  int n_;
  int queues_;
  const OverheadModel& model_;
  double hi_scale_;
  double precision_scale_;
  int evals_ = 0;
  std::vector<int> best_splits_;
};

}  // namespace

const char* PolicySpec::Name() const {
  switch (kind) {
    case Kind::kEdf:
      return "EDF";
    case Kind::kRm:
      return "RM";
    case Kind::kRmHeap:
      return "RM-heap";
    case Kind::kCsd:
      switch (csd_queues) {
        case 2:
          return "CSD-2";
        case 3:
          return "CSD-3";
        case 4:
          return "CSD-4";
        case 5:
          return "CSD-5";
        case 6:
          return "CSD-6";
        default:
          return "CSD-x";
      }
  }
  return "?";
}

BreakdownResult ComputeBreakdown(const TaskSet& sorted_tasks, PolicySpec policy,
                                 const CostModel& cost, const BreakdownOptions& options) {
  EM_ASSERT(sorted_tasks.IsSortedByPeriod());
  BreakdownResult result;
  int n = sorted_tasks.size();
  if (n == 0) {
    result.utilization = 1.0;
    return result;
  }
  OverheadModel model(cost);
  double raw_util = sorted_tasks.Utilization();
  EM_ASSERT(raw_util > 0.0);

  if (policy.kind == PolicySpec::Kind::kEdf) {
    // Closed form: sum((s*c_i + t)/P_i) <= 1, so the breakdown utilization is
    // 1 - sum(t/P_i), independent of how execution time is distributed.
    Duration overhead = model.EdfTaskOverhead(n);
    double overhead_util = 0.0;
    for (const PeriodicTask& task : sorted_tasks.tasks) {
      overhead_util +=
          static_cast<double>(overhead.nanos()) / static_cast<double>(task.period.nanos());
    }
    result.utilization = std::max(0.0, 1.0 - overhead_util);
    return result;
  }

  // A scale at which raw utilization reaches 1 is always infeasible once
  // positive overheads are added; use slightly above it as the upper bound.
  double hi_scale = 1.02 / raw_util;
  double precision_scale = options.precision / raw_util;

  if (policy.kind == PolicySpec::Kind::kRm || policy.kind == PolicySpec::Kind::kRmHeap) {
    bool heap = policy.kind == PolicySpec::Kind::kRmHeap;
    double lo = 0.0;
    double hi = hi_scale;
    EM_ASSERT_MSG(!RmFeasible(sorted_tasks, hi, model, heap),
                  "upper bound unexpectedly feasible");
    while (hi - lo > precision_scale) {
      double mid = 0.5 * (lo + hi);
      if (RmFeasible(sorted_tasks, mid, model, heap)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    result.utilization = lo * raw_util;
    return result;
  }

  // --- CSD ---
  EM_ASSERT(policy.kind == PolicySpec::Kind::kCsd && policy.csd_queues >= 2);
  int x = policy.csd_queues;
  CsdSearch search(sorted_tasks, x, model, hi_scale, precision_scale);
  double best = 0.0;
  std::vector<int> best_splits;

  auto consider = [&](const std::vector<int>& splits) {
    double improved = search.ImproveScale(splits, best);
    if (improved > best) {
      best = improved;
      best_splits = splits;
    }
  };

  if (x == 2) {
    for (int r = 0; r <= n; ++r) {
      consider({r});
    }
  } else if (x == 3 || options.exhaustive) {
    // Exhaustive over all non-decreasing split tuples (O(n^(x-1)) partitions;
    // the floor test keeps each loser at one schedulability test).
    std::vector<int> splits(x - 1, 0);
    std::function<void(int, int)> enumerate = [&](int dim, int min_value) {
      if (dim == x - 1) {
        consider(splits);
        return;
      }
      for (int v = min_value; v <= n; ++v) {
        splits[dim] = v;
        enumerate(dim + 1, v);
      }
    };
    enumerate(0, 0);
  } else {
    // CSD-4+: seed from the best CSD-3 allocation, then hill-climb.
    BreakdownOptions sub = options;
    BreakdownResult csd3 = ComputeBreakdown(sorted_tasks, PolicySpec::Csd(3), cost, sub);
    int q3 = 0;
    int r3 = 0;
    if (csd3.partition.size() == 3) {
      q3 = csd3.partition[0];
      r3 = q3 + csd3.partition[1];
    }
    std::vector<std::vector<int>> seeds;
    auto make_seed = [&](std::vector<int> points) {
      std::sort(points.begin(), points.end());
      points.resize(x - 1, points.empty() ? 0 : points.back());
      std::sort(points.begin(), points.end());
      seeds.push_back(points);
    };
    make_seed({q3 / 2, q3, r3});
    make_seed({q3, (q3 + r3) / 2, r3});
    make_seed({q3, r3, (r3 + n) / 2});
    make_seed({q3, r3, r3});
    for (const auto& seed : seeds) {
      consider(seed);
    }
    bool improved = true;
    std::vector<int> current = best_splits.empty() ? seeds[0] : best_splits;
    while (improved && search.evals() < options.max_hill_evals) {
      improved = false;
      for (size_t dim = 0; dim < current.size(); ++dim) {
        for (int delta : {-1, 1}) {
          std::vector<int> next = current;
          next[dim] += delta;
          if (next[dim] < 0 || next[dim] > n) {
            continue;
          }
          std::sort(next.begin(), next.end());
          double prev_best = best;
          consider(next);
          if (best > prev_best) {
            current = best_splits;
            improved = true;
          }
        }
      }
    }
  }

  result.utilization = best * raw_util;
  if (!best_splits.empty()) {
    result.partition = SizesFromSplits(best_splits, n);
  }
  return result;
}

std::vector<int> BestCsdPartition(const TaskSet& sorted_tasks, int queues, double scale,
                                  const CostModel& cost, bool exhaustive) {
  EM_ASSERT(queues >= 2);
  int n = sorted_tasks.size();
  OverheadModel model(cost);
  // Among feasible allocations, prefer the one with the most headroom: probe
  // feasibility at increasing scales and keep the last feasible allocation.
  std::vector<int> best;
  double best_margin = -1.0;
  std::vector<int> splits(queues - 1, 0);
  std::function<void(int, int)> enumerate = [&](int dim, int min_value) {
    if (dim == queues - 1) {
      std::vector<int> sizes = SizesFromSplits(splits, n);
      if (!CsdFeasible(sorted_tasks, sizes, scale, model)) {
        return;
      }
      // Headroom: largest extra scaling this allocation still admits.
      double lo = scale;
      double hi = scale * 4.0 + 1.0;
      for (int iter = 0; iter < 24; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (CsdFeasible(sorted_tasks, sizes, mid, model)) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      if (lo > best_margin) {
        best_margin = lo;
        best = sizes;
      }
      return;
    }
    for (int v = min_value; v <= n; ++v) {
      splits[dim] = v;
      enumerate(dim + 1, v);
    }
  };
  enumerate(0, 0);
  return best;
}

}  // namespace emeralds
