#include "src/analysis/breakdown.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "src/base/assert.h"

namespace emeralds {
namespace {

// Converts a partition (band sizes) back to split positions, dropping the
// implicit final boundary at n.
std::vector<int> SplitsFromSizes(const std::vector<int>& sizes) {
  std::vector<int> splits;
  if (sizes.empty()) {
    return splits;
  }
  splits.reserve(sizes.size() - 1);
  int acc = 0;
  for (size_t b = 0; b + 1 < sizes.size(); ++b) {
    acc += sizes[b];
    splits.push_back(acc);
  }
  return splits;
}

// Candidate starting points for the CSD-x hill climb, derived from the best
// CSD-(x-1) split tuple: one seed per gap of {0} U prev U {n} with an extra
// boundary at the gap midpoint, plus one duplicating the last boundary (an
// empty extra band). For x = 4 seeded from CSD-3's {q, r} this yields the
// four classic seeds {q/2, q, r}, {q, (q+r)/2, r}, {q, r, (r+n)/2}, {q, r, r}.
std::vector<std::vector<int>> HillClimbSeeds(std::vector<int> prev, int x, int n) {
  std::sort(prev.begin(), prev.end());
  if (static_cast<int>(prev.size()) > x - 2) {
    prev.resize(x - 2);
  }
  while (static_cast<int>(prev.size()) < x - 2) {
    prev.push_back(prev.empty() ? 0 : prev.back());
  }
  std::vector<std::vector<int>> seeds;
  auto add = [&](std::vector<int> s) {
    std::sort(s.begin(), s.end());
    seeds.push_back(std::move(s));
  };
  for (size_t gap = 0; gap <= prev.size(); ++gap) {
    int lo = gap == 0 ? 0 : prev[gap - 1];
    int hi = gap == prev.size() ? n : prev[gap];
    std::vector<int> s = prev;
    s.push_back((lo + hi) / 2);
    add(std::move(s));
  }
  std::vector<int> dup = prev;
  dup.push_back(prev.empty() ? 0 : prev.back());
  add(std::move(dup));
  return seeds;
}

// The partition search proper, identical for both engines: a floor-probed
// scan (losers cost at most one schedulability test — or none when the
// engine can prove infeasibility from its bounds) with warm-started
// bisection from the incumbent best scale.
class CsdBreakdownSearch {
 public:
  CsdBreakdownSearch(CsdEngine& engine, int n, int x, double hi_scale, double precision_scale,
                     CsdSearchStats* stats)
      : engine_(engine),
        n_(n),
        x_(x),
        hi_scale_(hi_scale),
        precision_scale_(precision_scale),
        stats_(stats) {}

  double ProbeScale() const {
    return best_ <= 0.0 ? precision_scale_ : best_ + precision_scale_;
  }

  // Evaluates one split tuple: skip if the engine proves it infeasible at the
  // probe scale, probe just above the incumbent otherwise, and bisect to the
  // partition's breakdown scale only when the probe succeeds.
  void Consider(const std::vector<int>& splits) {
    ++considered_;
    ++stats_->considered;
    double probe = ProbeScale();
    if (engine_.ProvablyInfeasible(splits, probe)) {
      ++stats_->pruned;
      return;
    }
    if (!engine_.Feasible(splits, probe)) {
      return;
    }
    // The probe succeeded, so this partition beats the incumbent — but
    // usually only by a few precision steps. Gallop a geometrically growing
    // bracket up from the probe instead of bisecting down from the global
    // upper bound; a one-step improvement then settles in two tests.
    double lo = probe;
    double hi = hi_scale_;
    double step = precision_scale_;
    while (lo + step < hi) {
      if (engine_.Feasible(splits, lo + step)) {
        lo += step;
        step *= 2.0;
      } else {
        hi = lo + step;
        break;
      }
    }
    while (hi - lo > precision_scale_) {
      double mid = 0.5 * (lo + hi);
      if (engine_.Feasible(splits, mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    best_ = lo;
    best_splits_ = splits;
  }

  // Strong incumbents first: the degenerate all-DP (EDF-like) and all-FP
  // (RM-like) partitions. Raising `best` early makes every later probe run
  // at a scale where the engine's bounds prune hardest.
  void SeedIncumbents() {
    Consider(std::vector<int>(x_ - 1, n_));
    Consider(std::vector<int>(x_ - 1, 0));
  }

  // Exhaustive over all non-decreasing split tuples (O(n^(x-1)) partitions).
  // Subtrees whose DP prefix is already provably over-utilized at the probe
  // scale are cut wholesale; the bound is monotone in the split position, so
  // the scan over a dimension stops at the first pruned value.
  void RunExhaustive() {
    std::vector<int> splits(x_ - 1, 0);
    std::function<void(int, int)> enumerate = [&](int dim, int min_value) {
      if (dim == x_ - 1) {
        Consider(splits);
        return;
      }
      for (int v = min_value; v <= n_; ++v) {
        if (engine_.PrefixProvablyInfeasible(v, ProbeScale())) {
          break;
        }
        splits[dim] = v;
        enumerate(dim + 1, v);
      }
    };
    enumerate(0, 0);
  }

  // Seeded hill climb for CSD-4+ with a budget on tuples considered.
  void RunHillClimb(const std::vector<int>& prev_splits, int budget) {
    std::vector<std::vector<int>> seeds = HillClimbSeeds(prev_splits, x_, n_);
    for (const std::vector<int>& seed : seeds) {
      Consider(seed);
    }
    std::vector<int> current = best_splits_.empty() ? seeds[0] : best_splits_;
    bool improved = true;
    // The budget covers only this search's own tuples (considered_, not the
    // shared stats, which may include an internal CSD-(x-1) seeding run).
    while (improved && considered_ < budget) {
      improved = false;
      for (size_t dim = 0; dim < current.size(); ++dim) {
        for (int delta : {-1, 1}) {
          std::vector<int> next = current;
          next[dim] += delta;
          if (next[dim] < 0 || next[dim] > n_) {
            continue;
          }
          std::sort(next.begin(), next.end());
          double prev_best = best_;
          Consider(next);
          if (best_ > prev_best) {
            current = best_splits_;
            improved = true;
          }
        }
      }
    }
  }

  double best() const { return best_; }
  const std::vector<int>& best_splits() const { return best_splits_; }

 private:
  CsdEngine& engine_;
  int n_;
  int x_;
  double hi_scale_;
  double precision_scale_;
  CsdSearchStats* stats_;
  int considered_ = 0;
  double best_ = 0.0;
  std::vector<int> best_splits_;
};

BreakdownResult ComputeBreakdownImpl(const TaskSet& sorted_tasks, PolicySpec policy,
                                     const CostModel& cost, const BreakdownOptions& options,
                                     bool use_reference_engine) {
  EM_ASSERT(sorted_tasks.IsSortedByPeriod());
  BreakdownResult result;
  int n = sorted_tasks.size();
  if (n == 0) {
    result.utilization = 1.0;
    return result;
  }
  OverheadModel model(cost);
  double raw_util = sorted_tasks.Utilization();
  EM_ASSERT(raw_util > 0.0);

  if (policy.kind == PolicySpec::Kind::kEdf) {
    // Closed form: sum((s*c_i + t)/P_i) <= 1, so the breakdown utilization is
    // 1 - sum(t/P_i), independent of how execution time is distributed.
    Duration overhead = model.EdfTaskOverhead(n);
    double overhead_util = 0.0;
    for (const PeriodicTask& task : sorted_tasks.tasks) {
      overhead_util +=
          static_cast<double>(overhead.nanos()) / static_cast<double>(task.period.nanos());
    }
    result.utilization = std::max(0.0, 1.0 - overhead_util);
    return result;
  }

  // A scale at which raw utilization reaches 1 is always infeasible once
  // positive overheads are added; use slightly above it as the upper bound.
  double hi_scale = 1.02 / raw_util;
  double precision_scale = options.precision / raw_util;

  if (policy.kind == PolicySpec::Kind::kRm || policy.kind == PolicySpec::Kind::kRmHeap) {
    bool heap = policy.kind == PolicySpec::Kind::kRmHeap;
    double lo = 0.0;
    double hi = hi_scale;
    EM_ASSERT_MSG(!RmFeasible(sorted_tasks, hi, model, heap),
                  "upper bound unexpectedly feasible");
    while (hi - lo > precision_scale) {
      double mid = 0.5 * (lo + hi);
      if (RmFeasible(sorted_tasks, mid, model, heap)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    result.utilization = lo * raw_util;
    return result;
  }

  // --- CSD ---
  EM_ASSERT(policy.kind == PolicySpec::Kind::kCsd && policy.csd_queues >= 2);
  int x = policy.csd_queues;
  CsdSearchStats stats;
  std::unique_ptr<CsdEngine> engine;
  if (use_reference_engine) {
    engine = std::make_unique<NaiveCsdEngine>(sorted_tasks, model, &stats);
  } else {
    engine = std::make_unique<CsdEvaluator>(sorted_tasks, x, model, &stats);
  }
  CsdBreakdownSearch search(*engine, n, x, hi_scale, precision_scale, &stats);
  search.SeedIncumbents();

  if (x <= 3 || options.exhaustive) {
    search.RunExhaustive();
  } else {
    // CSD-4+: seed from the best CSD-(x-1) allocation, then hill-climb. The
    // caller can pass the CSD-(x-1) result it already computed for this
    // workload (options.csd_seed); otherwise it is computed here.
    std::vector<int> prev_splits;
    if (options.csd_seed != nullptr) {
      prev_splits = SplitsFromSizes(options.csd_seed->partition);
    } else {
      BreakdownOptions sub = options;
      sub.csd_seed = nullptr;
      sub.stats = &stats;
      BreakdownResult prev = ComputeBreakdownImpl(sorted_tasks, PolicySpec::Csd(x - 1), cost,
                                                  sub, use_reference_engine);
      prev_splits = SplitsFromSizes(prev.partition);
    }
    search.RunHillClimb(prev_splits, options.max_hill_evals);
  }

  if (options.stats != nullptr) {
    options.stats->Add(stats);
  }
  result.utilization = search.best() * raw_util;
  if (!search.best_splits().empty()) {
    result.partition = CsdSizesFromSplits(search.best_splits(), n);
  }
  return result;
}

}  // namespace

const char* PolicySpec::Name() const {
  switch (kind) {
    case Kind::kEdf:
      return "EDF";
    case Kind::kRm:
      return "RM";
    case Kind::kRmHeap:
      return "RM-heap";
    case Kind::kCsd:
      switch (csd_queues) {
        case 2:
          return "CSD-2";
        case 3:
          return "CSD-3";
        case 4:
          return "CSD-4";
        case 5:
          return "CSD-5";
        case 6:
          return "CSD-6";
        default:
          return "CSD-x";
      }
  }
  return "?";
}

BreakdownResult ComputeBreakdown(const TaskSet& sorted_tasks, PolicySpec policy,
                                 const CostModel& cost, const BreakdownOptions& options) {
  return ComputeBreakdownImpl(sorted_tasks, policy, cost, options,
                              /*use_reference_engine=*/false);
}

BreakdownResult ComputeBreakdownReference(const TaskSet& sorted_tasks, PolicySpec policy,
                                          const CostModel& cost,
                                          const BreakdownOptions& options) {
  return ComputeBreakdownImpl(sorted_tasks, policy, cost, options,
                              /*use_reference_engine=*/true);
}

std::vector<int> BestCsdPartition(const TaskSet& sorted_tasks, int queues, double scale,
                                  const CostModel& cost, bool exhaustive,
                                  CsdSearchStats* stats_out) {
  EM_ASSERT(queues >= 2);
  int n = sorted_tasks.size();
  OverheadModel model(cost);
  CsdSearchStats stats;
  CsdEvaluator eval(sorted_tasks, queues, model, &stats);
  // Among feasible allocations, prefer the one with the most headroom: the
  // largest extra scaling the allocation still admits. Losers are floor-
  // probed at the incumbent's margin (one test — or none when the bounds
  // prune) before paying the headroom bisection.
  double best_margin = -1.0;
  bool found = false;
  int considered_here = 0;
  std::vector<int> best_splits;
  auto consider = [&](const std::vector<int>& splits) {
    ++considered_here;
    ++stats.considered;
    double probe = found ? best_margin : scale;
    if (eval.ProvablyInfeasible(splits, probe)) {
      ++stats.pruned;
      return;
    }
    if (!eval.Feasible(splits, probe)) {
      return;
    }
    double lo = probe;
    double hi = scale * 4.0 + 1.0;
    for (int iter = 0; iter < 24; ++iter) {
      double mid = 0.5 * (lo + hi);
      if (eval.Feasible(splits, mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    if (lo > best_margin) {
      best_margin = lo;
      best_splits = splits;
      found = true;
    }
  };

  if (queues <= 3 || exhaustive) {
    std::vector<int> splits(queues - 1, 0);
    std::function<void(int, int)> enumerate = [&](int dim, int min_value) {
      if (dim == queues - 1) {
        consider(splits);
        return;
      }
      for (int v = min_value; v <= n; ++v) {
        if (eval.PrefixProvablyInfeasible(v, found ? best_margin : scale)) {
          break;
        }
        splits[dim] = v;
        enumerate(dim + 1, v);
      }
    };
    enumerate(0, 0);
  } else {
    // Seeded hill climb, as the header promises for queues >= 4: start from
    // the best CSD-(queues-1) allocation and walk split boundaries uphill on
    // the headroom objective.
    std::vector<int> prev_sizes =
        BestCsdPartition(sorted_tasks, queues - 1, scale, cost, /*exhaustive=*/false, &stats);
    std::vector<int> prev_splits = SplitsFromSizes(prev_sizes);
    std::vector<std::vector<int>> seeds = HillClimbSeeds(prev_splits, queues, n);
    for (const std::vector<int>& seed : seeds) {
      consider(seed);
    }
    std::vector<int> current = found ? best_splits : seeds[0];
    constexpr int kHillBudget = 500;
    bool improved = true;
    while (improved && considered_here < kHillBudget) {
      improved = false;
      for (size_t dim = 0; dim < current.size(); ++dim) {
        for (int delta : {-1, 1}) {
          std::vector<int> next = current;
          next[dim] += delta;
          if (next[dim] < 0 || next[dim] > n) {
            continue;
          }
          std::sort(next.begin(), next.end());
          double prev_margin = best_margin;
          consider(next);
          if (best_margin > prev_margin) {
            current = best_splits;
            improved = true;
          }
        }
      }
    }
  }

  if (stats_out != nullptr) {
    stats_out->Add(stats);
  }
  if (!found) {
    return {};
  }
  return CsdSizesFromSplits(best_splits, n);
}

}  // namespace emeralds
