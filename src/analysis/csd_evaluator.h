// Incremental, pruned, cached evaluation of CSD partition feasibility — the
// engine behind the off-line task-to-queue search of Section 5.5.3.
//
// The naive search pays a from-scratch CsdFeasible for every (partition,
// scale) it touches. CsdEvaluator answers the same queries while exploiting
// three structural facts:
//
//  1. At a fixed scale, the scaled execution times — and their running
//     cost/utilization prefix sums — are the same for every partition. They
//     are computed once per (workload, scale) and reused across all
//     partitions probed at that scale, replacing the O(n) inner rescans of
//     CsdFeasible with O(#bands) prefix-sum lookups.
//  2. Feasibility is monotone in the scale factor: scaled costs only grow
//     with the scale, and every sub-test (utilization, processor demand,
//     response time, and their conservative iteration caps) only gets harder
//     as costs grow. Results are therefore memoized per partition as a
//     [max-known-feasible, min-known-infeasible] scale interval.
//  3. Per-task scheduler overheads admit lower bounds keyed only on the FP
//     band's start position r (OverheadModel::Csd*OverheadLowerBound): the
//     longest DP queue must hold at least ceil(r/(x-1)) tasks, and the FP
//     queue holds exactly n - r. Substituting them yields cheap necessary
//     conditions — a cumulative-utilization bound over the DP prefix 0..r
//     and a per-task response-time bound over the FP suffix r..n — that
//     reject most split tuples at the search's probe scale without any full
//     schedulability test, and cut whole enumeration subtrees.
//
// Soundness of the pruning (a pruned partition is genuinely infeasible) is
// what keeps the optimized search bit-identical to the naive one; the
// golden-equivalence tests assert exactly that against the retained
// NaiveCsdEngine.

#ifndef SRC_ANALYSIS_CSD_EVALUATOR_H_
#define SRC_ANALYSIS_CSD_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/analysis/overhead.h"
#include "src/analysis/sched_test.h"
#include "src/workload/workload.h"

namespace emeralds {

// Evaluation counters threaded through the breakdown search (see
// BreakdownOptions::stats). `full_evals` counts complete schedulability
// tests — the paper's "2-3 minute" unit of work and the number the perf
// trajectory in BENCH_breakdown.json tracks.
struct CsdSearchStats {
  int64_t full_evals = 0;    // complete CsdFeasible-grade tests run
  int64_t cache_hits = 0;    // queries answered by the (partition, scale) memo
  int64_t pruned = 0;        // partitions rejected by bound checks alone
  int64_t considered = 0;    // split tuples the search visited
  int64_t bound_evals = 0;   // cheap per-task lower-bound tests run

  void Add(const CsdSearchStats& other) {
    full_evals += other.full_evals;
    cache_hits += other.cache_hits;
    pruned += other.pruned;
    considered += other.considered;
    bound_evals += other.bound_evals;
  }
};

// Converts split points (ascending positions in the sorted task list) into
// band sizes. CSD-2: {r} -> {r, n-r}; CSD-3: {q, r} -> {q, r-q, n-r}; ...
std::vector<int> CsdSizesFromSplits(const std::vector<int>& splits, int n);

// Feasibility oracle the partition search runs against. Both engines must
// answer Feasible() identically; the optimized engine may additionally prove
// infeasibility cheaply (Prune hooks), which the search uses to skip the
// probe entirely.
class CsdEngine {
 public:
  virtual ~CsdEngine() = default;

  // Exact feasibility of the partition described by `splits` at `scale`;
  // equivalent to CsdFeasible(tasks, CsdSizesFromSplits(splits, n), scale).
  virtual bool Feasible(const std::vector<int>& splits, double scale) = 0;

  // true => the partition is provably infeasible at `scale` (never a false
  // positive). The default never prunes.
  virtual bool ProvablyInfeasible(const std::vector<int>& splits, double scale) { return false; }

  // true => every partition whose task prefix 0..prefix_end lives in DP
  // queues is provably infeasible at `scale` (the cumulative-utilization
  // lower bound). Monotone in prefix_end; used to cut enumeration subtrees.
  virtual bool PrefixProvablyInfeasible(int prefix_end, double scale) { return false; }
};

// The retained naive reference: a fresh CsdFeasible per query, no reuse.
// Golden-equivalence tests and the bench reference sample run against it.
class NaiveCsdEngine : public CsdEngine {
 public:
  NaiveCsdEngine(const TaskSet& sorted_tasks, const OverheadModel& model, CsdSearchStats* stats)
      : tasks_(sorted_tasks), n_(sorted_tasks.size()), model_(model), stats_(stats) {}

  bool Feasible(const std::vector<int>& splits, double scale) override;

 private:
  const TaskSet& tasks_;
  int n_;
  const OverheadModel& model_;
  CsdSearchStats* stats_;
};

class CsdEvaluator : public CsdEngine {
 public:
  // `sorted_tasks` and `model` must outlive the evaluator. One evaluator
  // serves one (workload, queue-count) pair; it is not thread-safe.
  CsdEvaluator(const TaskSet& sorted_tasks, int queues, const OverheadModel& model,
               CsdSearchStats* stats);

  bool Feasible(const std::vector<int>& splits, double scale) override;
  bool ProvablyInfeasible(const std::vector<int>& splits, double scale) override;
  bool PrefixProvablyInfeasible(int prefix_end, double scale) override;

 private:
  struct CacheEntry {
    double max_feasible = -1.0;
    double min_infeasible = 1e300;
  };

  // Rebuilds the per-scale tables (scaled base costs and their prefix sums)
  // when `scale` differs from the cached one.
  void EnsureScaleTables(double scale);
  // Rebuilds the pruning tables (per-FP-start overhead lower bounds and the
  // derived DP-prefix utilization bounds) at the search's probe scale.
  void EnsureBoundTables(double scale);
  // true => some FP-band task of a partition with FP start `r` provably
  // misses its deadline at bound_scale_ (lazy, memoized per r).
  bool FpBoundFails(int r);
  // Stages of the full test at the current table scale. ComputeBandOverheads
  // fills band_oh_ (identical CsdTaskOverhead calls to the reference);
  // UtilStageFeasible runs the cumulative-utilization checks via prefix sums;
  // FillCosts materializes the per-task inflated costs into cost_scratch_.
  void ComputeBandOverheads(const std::vector<int>& sizes);
  bool UtilStageFeasible(const std::vector<int>& sizes) const;
  void FillCosts(const std::vector<int>& sizes);
  // The full schedulability test, sharing CsdDemandAndRtaFeasible with the
  // reference implementation; only the utilization checks use prefix sums.
  bool FullTest(const std::vector<int>& sizes, double scale);

  const TaskSet& tasks_;
  int n_;
  int x_;
  const OverheadModel& model_;
  CsdSearchStats* stats_;

  // Scale-independent per-task tables.
  std::vector<int64_t> period_ns_;
  std::vector<int64_t> deadline_ns_;
  std::vector<double> inv_period_prefix_;  // prefix sums of 1/period

  // Tables valid at table_scale_.
  double table_scale_ = -1.0;
  std::vector<int64_t> base_cost_;          // round(wcet * scale), no overhead
  std::vector<int64_t> base_cost_prefix_;   // int64 prefix sums of base_cost_
  std::vector<double> base_util_prefix_;    // prefix sums of base_cost_/period

  // Pruning tables valid at bound_scale_, indexed by the FP start r.
  double bound_scale_ = -1.0;
  std::vector<int64_t> lb_dp_oh_;    // DP-task overhead lower bound, dp_total = r
  std::vector<int64_t> lb_fp_oh_;    // FP-task overhead lower bound, fp_length = n - r
  std::vector<double> dp_util_lb_;   // utilization lower bound of tasks 0..r
  std::vector<double> dp_util_cut_;  // min over r' >= r of dp_util_lb_ terms (subtree cut)
  std::vector<uint8_t> fp_verdict_;  // lazy FpBoundFails memo: 0 unknown, 1 pass, 2 fail

  // Scratch buffers reused across queries.
  std::vector<int64_t> band_oh_;
  std::vector<int> dp_lengths_scratch_;
  std::vector<int64_t> cost_scratch_;

  std::map<std::vector<int>, CacheEntry> cache_;
};

}  // namespace emeralds

#endif  // SRC_ANALYSIS_CSD_EVALUATOR_H_
