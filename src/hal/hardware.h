// The virtual hardware platform: clock + interrupt controller + hardware
// timers.
//
// A HardwareTimer models any time-triggered hardware activity: the kernel's
// programmable one-shot timer and the autonomous behaviour of simulated
// devices (a fieldbus frame arriving, a sensor sample completing). Timers are
// kept in an intrusive list ordered by (expiry, arm sequence) so simultaneous
// expiries fire deterministically in arming order.
//
// The executive drives time: it asks for the next expiry, advances the clock,
// and calls FireDueTimers(). Timer callbacks typically raise IRQ lines; the
// kernel dispatches those separately (interrupts stay "disabled" while the
// kernel is inside a critical section).

#ifndef SRC_HAL_HARDWARE_H_
#define SRC_HAL_HARDWARE_H_

#include <cstdint>

#include "src/base/intrusive_list.h"
#include "src/base/time.h"
#include "src/hal/clock.h"
#include "src/hal/interrupts.h"

namespace emeralds {

class Hardware;

class HardwareTimer {
 public:
  virtual ~HardwareTimer();

  bool armed() const { return node_.linked(); }
  Instant expiry() const { return expiry_; }

 protected:
  HardwareTimer() = default;

  // Invoked by Hardware when the clock reaches the programmed expiry. The
  // timer has already been disarmed; the callback may re-arm it.
  virtual void OnExpire(Hardware& hw) = 0;

 private:
  friend class Hardware;

  ListNode<HardwareTimer> node_;
  Instant expiry_;
  uint64_t arm_seq_ = 0;
  Hardware* hardware_ = nullptr;  // set while armed, for self-disarm
};

class Hardware {
 public:
  Hardware() = default;
  Hardware(const Hardware&) = delete;
  Hardware& operator=(const Hardware&) = delete;
  ~Hardware();

  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }
  Instant now() const { return clock_.now(); }

  InterruptController& irq() { return irq_; }
  const InterruptController& irq() const { return irq_; }

  // Arms `timer` to expire at `when` (>= now). Re-arming an armed timer
  // reprograms it.
  void ArmTimer(HardwareTimer& timer, Instant when);
  void DisarmTimer(HardwareTimer& timer);

  // Earliest armed expiry, or Instant::Max() if no timer is armed.
  Instant NextTimerExpiry() const;

  // Fires (and disarms) every timer whose expiry is <= now. Returns the
  // number fired. Callbacks may arm new timers; ones due now also fire.
  int FireDueTimers();

 private:
  VirtualClock clock_;
  InterruptController irq_;
  IntrusiveList<HardwareTimer, &HardwareTimer::node_> timers_;
  uint64_t next_arm_seq_ = 0;
};

}  // namespace emeralds

#endif  // SRC_HAL_HARDWARE_H_
