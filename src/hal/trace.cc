#include "src/hal/trace.h"

#include <cstdio>
#include <cstring>

namespace emeralds {

const char* TraceEventTypeToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kContextSwitch:
      return "context_switch";
    case TraceEventType::kJobRelease:
      return "job_release";
    case TraceEventType::kJobComplete:
      return "job_complete";
    case TraceEventType::kDeadlineMiss:
      return "deadline_miss";
    case TraceEventType::kSemAcquire:
      return "sem_acquire";
    case TraceEventType::kSemAcquireBlock:
      return "sem_acquire_block";
    case TraceEventType::kSemRelease:
      return "sem_release";
    case TraceEventType::kSemCseEarlyPi:
      return "sem_cse_early_pi";
    case TraceEventType::kPiInherit:
      return "pi_inherit";
    case TraceEventType::kPiRestore:
      return "pi_restore";
    case TraceEventType::kIrq:
      return "irq";
    case TraceEventType::kMsgSend:
      return "msg_send";
    case TraceEventType::kMsgRecv:
      return "msg_recv";
    case TraceEventType::kThreadExit:
      return "thread_exit";
    case TraceEventType::kPiChainLimit:
      return "pi_chain_limit";
    case TraceEventType::kHeadroomLow:
      return "headroom_low";
    case TraceEventType::kChainEmit:
      return "chain_emit";
    case TraceEventType::kChainConsume:
      return "chain_consume";
    case TraceEventType::kTraceEpoch:
      return "trace_epoch";
    case TraceEventType::kOverheadSpan:
      return "overhead_span";
    case TraceEventType::kThreadBlock:
      return "thread_block";
    case TraceEventType::kThreadReady:
      return "thread_ready";
  }
  return "?";
}

const char* ChainEndpointKindToString(ChainEndpointKind kind) {
  switch (kind) {
    case ChainEndpointKind::kIrq:
      return "irq";
    case ChainEndpointKind::kRelease:
      return "release";
    case ChainEndpointKind::kSem:
      return "sem";
    case ChainEndpointKind::kCondvar:
      return "cv";
    case ChainEndpointKind::kMailbox:
      return "mbox";
    case ChainEndpointKind::kSmsg:
      return "smsg";
  }
  return "?";
}

bool TraceEventTypeFromString(const char* name, TraceEventType* out) {
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    TraceEventType type = static_cast<TraceEventType>(i);
    if (std::strcmp(name, TraceEventTypeToString(type)) == 0) {
      *out = type;
      return true;
    }
  }
  return false;
}

size_t TraceSink::ExportCsv(std::FILE* out) const {
  std::fprintf(out, "time_us,event,arg0,arg1,arg2\n");
  for (size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = at(i);
    std::fprintf(out, "%lld,%s,%d,%d,%d\n", static_cast<long long>(e.time.micros()),
                 TraceEventTypeToString(e.type), e.arg0, e.arg1, e.arg2);
  }
  if (dropped_ > 0) {
    std::fprintf(out, "# dropped=%llu\n", static_cast<unsigned long long>(dropped_));
  }
  return size();
}

void TraceSink::Dump(std::FILE* out) const {
  for (size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = at(i);
    std::fprintf(out, "%12.3fms  %-18s %4d %4d %4d\n", e.time.millis_f(),
                 TraceEventTypeToString(e.type), e.arg0, e.arg1, e.arg2);
  }
  if (dropped_ > 0) {
    std::fprintf(out, "(%llu of %llu events dropped; window shows the most recent %zu)\n",
                 static_cast<unsigned long long>(dropped_),
                 static_cast<unsigned long long>(total_recorded_), size());
  }
}

}  // namespace emeralds
