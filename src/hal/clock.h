// The virtual clock: monotonically advancing simulated time.

#ifndef SRC_HAL_CLOCK_H_
#define SRC_HAL_CLOCK_H_

#include "src/base/time.h"

namespace emeralds {

class VirtualClock {
 public:
  VirtualClock() = default;

  Instant now() const { return now_; }

  // Moves the clock forward to `t`. Panics on an attempt to move backwards —
  // the executive and cost-charging paths must only ever add time.
  void AdvanceTo(Instant t);

  // Convenience: advances by a non-negative duration.
  void AdvanceBy(Duration d);

 private:
  Instant now_;
};

}  // namespace emeralds

#endif  // SRC_HAL_CLOCK_H_
