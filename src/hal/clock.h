// The virtual clock: monotonically advancing simulated time.

#ifndef SRC_HAL_CLOCK_H_
#define SRC_HAL_CLOCK_H_

#include "src/base/time.h"
#include "src/hal/cycles.h"

namespace emeralds {

class VirtualClock {
 public:
  VirtualClock() = default;

  Instant now() const { return now_; }

  // Moves the clock forward to `t`. Panics on an attempt to move backwards —
  // the executive and cost-charging paths must only ever add time. Every
  // advance is attributed to a CycleBucket; callers outside a kernel (hal
  // tests, host drivers) default to kUnattributed.
  void AdvanceTo(Instant t, CycleBucket bucket = CycleBucket::kUnattributed);

  // Convenience: advances by a non-negative duration.
  void AdvanceBy(Duration d, CycleBucket bucket = CycleBucket::kUnattributed);

  // Cumulative attribution since construction. Conservation holds by
  // construction here: ledger().total() == now() - Instant().
  const CycleLedger& ledger() const { return ledger_; }

 private:
  Instant now_;
  CycleLedger ledger_;
};

}  // namespace emeralds

#endif  // SRC_HAL_CLOCK_H_
