// Virtual-cycle attribution buckets.
//
// Every advance of the virtual clock is tagged with a CycleBucket naming the
// subsystem that consumed the time — the runtime analogue of the paper's
// Table 1 / Figure 3-5 overhead ledger. The buckets partition elapsed virtual
// time exactly: the hard conservation invariant (checked by the trace
// analyzer, obs_report reconciliation, and the torture harness's fourth
// oracle) is that the bucket sum equals elapsed virtual time to the tick.

#ifndef SRC_HAL_CYCLES_H_
#define SRC_HAL_CYCLES_H_

#include "src/base/time.h"

namespace emeralds {

enum class CycleBucket : int {
  kUser = 0,        // application compute charged to the running task
  kSchedSelect,     // ready-queue select (t_s), any band
  kSchedBlock,      // ready-queue block (t_b), any band
  kSchedUnblock,    // ready-queue unblock (t_u), any band
  kSchedParse,      // CSD empty-queue parsing while hunting for work
  kContextSwitch,   // register save/restore, address-space switch
  kSyscall,         // user->kernel->user trap cost
  kSemaphore,       // semaphore bookkeeping (lock test, wait-queue linkage)
  kPi,              // priority-inheritance bookkeeping and place-holder swaps
  kIpc,             // mailbox/state-message copies and queue management
  kIrq,             // interrupt prologue/epilogue
  kTimerSvc,        // software-timer dispatch in the timer ISR
  kStatsObs,        // stats sampling / observability overhead
  kIpi,             // virtual inter-processor interrupt (cross-core wake)
  kIdle,            // no runnable thread
  kUnattributed,    // raw clock advances outside a kernel (hal tests, hosts)
};
inline constexpr int kNumCycleBuckets = static_cast<int>(CycleBucket::kUnattributed) + 1;

// Stable lowercase names, used as JSON keys in the emeralds.obs.cycles/1
// schema and as Perfetto counter-track names.
const char* CycleBucketToString(CycleBucket bucket);

// Fixed-size per-bucket accumulator. The clock owns a cumulative one
// (conservation by construction: total() == now - epoch 0); KernelStats
// carries an epoch-windowed mirror that the oracles check.
struct CycleLedger {
  Duration buckets[kNumCycleBuckets] = {};

  void Add(CycleBucket bucket, Duration amount) {
    buckets[static_cast<int>(bucket)] += amount;
  }
  Duration at(CycleBucket bucket) const { return buckets[static_cast<int>(bucket)]; }
  Duration total() const {
    Duration sum;
    for (const Duration& d : buckets) {
      sum += d;
    }
    return sum;
  }
};

}  // namespace emeralds

#endif  // SRC_HAL_CYCLES_H_
