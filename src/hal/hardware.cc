#include "src/hal/hardware.h"

namespace emeralds {

HardwareTimer::~HardwareTimer() {
  // Self-disarm so timers may be destroyed in any order relative to the
  // Hardware instance (which clears the list in its own destructor).
  if (armed() && hardware_ != nullptr) {
    hardware_->DisarmTimer(*this);
  }
}

Hardware::~Hardware() { timers_.clear(); }

void Hardware::ArmTimer(HardwareTimer& timer, Instant when) {
  EM_ASSERT_MSG(when >= now(), "timer armed in the past");
  if (timer.armed()) {
    timers_.erase(timer);
  }
  timer.hardware_ = this;
  timer.expiry_ = when;
  timer.arm_seq_ = next_arm_seq_++;
  // Sorted insert by (expiry, arm_seq). Timer lists are short (one per device
  // plus the kernel's programmable timer), so the O(n) scan is irrelevant.
  for (HardwareTimer& other : timers_) {
    if (when < other.expiry_ || (when == other.expiry_ && timer.arm_seq_ < other.arm_seq_)) {
      timers_.insert_before(other, timer);
      return;
    }
  }
  timers_.push_back(timer);
}

void Hardware::DisarmTimer(HardwareTimer& timer) {
  if (timer.armed()) {
    timers_.erase(timer);
  }
}

Instant Hardware::NextTimerExpiry() const {
  const HardwareTimer* first = timers_.front();
  return first == nullptr ? Instant::Max() : first->expiry();
}

int Hardware::FireDueTimers() {
  int fired = 0;
  while (true) {
    HardwareTimer* first = timers_.front();
    if (first == nullptr || first->expiry() > now()) {
      return fired;
    }
    timers_.erase(*first);
    ++fired;
    first->OnExpire(*this);
  }
}

}  // namespace emeralds
