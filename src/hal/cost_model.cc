#include "src/hal/cost_model.h"

namespace emeralds {
namespace {

constexpr LinearCost Fixed(double us) { return LinearCost{MicrosecondsF(us), Duration()}; }
constexpr LinearCost Linear(double fixed_us, double per_unit_us) {
  return LinearCost{MicrosecondsF(fixed_us), MicrosecondsF(per_unit_us)};
}

}  // namespace

CostModel CostModel::MC68040_25MHz() {
  CostModel m{};

  // Table 1 of the paper (values in us; `units` are actual nodes visited or
  // heap levels traversed, whose worst cases are n and ceil(log2(n+1))).
  // EDF unsorted list.
  m.queue[static_cast<int>(QueueKind::kEdfList)][static_cast<int>(QueueOp::kBlock)] = Fixed(1.6);
  m.queue[static_cast<int>(QueueKind::kEdfList)][static_cast<int>(QueueOp::kUnblock)] = Fixed(1.2);
  m.queue[static_cast<int>(QueueKind::kEdfList)][static_cast<int>(QueueOp::kSelect)] =
      Linear(1.2, 0.25);
  // RM sorted list with highestp.
  m.queue[static_cast<int>(QueueKind::kRmList)][static_cast<int>(QueueOp::kBlock)] =
      Linear(1.0, 0.36);
  m.queue[static_cast<int>(QueueKind::kRmList)][static_cast<int>(QueueOp::kUnblock)] = Fixed(1.4);
  m.queue[static_cast<int>(QueueKind::kRmList)][static_cast<int>(QueueOp::kSelect)] = Fixed(0.6);
  // RM binary heap (ready tasks only).
  m.queue[static_cast<int>(QueueKind::kRmHeap)][static_cast<int>(QueueOp::kBlock)] =
      Linear(0.4, 2.8);
  m.queue[static_cast<int>(QueueKind::kRmHeap)][static_cast<int>(QueueOp::kUnblock)] =
      Linear(1.9, 0.7);
  m.queue[static_cast<int>(QueueKind::kRmHeap)][static_cast<int>(QueueOp::kSelect)] = Fixed(0.6);

  m.csd_queue_parse = MicrosecondsF(0.55);  // Section 5.7

  // Calibrated from the Figure 11 anchors (see EXPERIMENTS.md): standard
  // contended acquire/release on a 15-task DP queue costs ~39 us, the new
  // scheme saves ~11 us (28%); on the FP queue the new scheme is a constant
  // 29.4 us and saves ~10.4 us (26%) at queue length 15.
  m.context_switch = MicrosecondsF(4.0);
  m.syscall = MicrosecondsF(1.0);
  m.interrupt_entry = MicrosecondsF(2.0);
  m.interrupt_exit = MicrosecondsF(1.0);
  m.timer_dispatch = MicrosecondsF(1.0);
  m.ipi = MicrosecondsF(3.0);
  m.pi_fixed = MicrosecondsF(2.5);
  m.pi_swap = MicrosecondsF(4.3);
  m.pi_queue_visit = MicrosecondsF(0.36);
  m.sem_fixed = MicrosecondsF(5.5);
  m.sem_cse_check = MicrosecondsF(1.0);
  m.waitq_visit = MicrosecondsF(0.3);
  m.mailbox_fixed = MicrosecondsF(8.0);
  m.copy_per_word = MicrosecondsF(0.4);
  m.statemsg_fixed = MicrosecondsF(2.0);
  // Copying the counter block into the sampler ring: a few cache lines of
  // loads/stores plus the delta arithmetic, comparable to a mailbox header.
  m.stats_sample = MicrosecondsF(2.0);
  return m;
}

CostModel CostModel::ScaledBy(double factor) const {
  auto scale = [factor](Duration d) {
    return Duration::FromNanos(
        static_cast<int64_t>(static_cast<double>(d.nanos()) * factor + 0.5));
  };
  CostModel m = *this;
  for (auto& per_kind : m.queue) {
    for (LinearCost& cost : per_kind) {
      cost.fixed = scale(cost.fixed);
      cost.per_unit = scale(cost.per_unit);
    }
  }
  m.csd_queue_parse = scale(m.csd_queue_parse);
  m.context_switch = scale(m.context_switch);
  m.syscall = scale(m.syscall);
  m.interrupt_entry = scale(m.interrupt_entry);
  m.interrupt_exit = scale(m.interrupt_exit);
  m.timer_dispatch = scale(m.timer_dispatch);
  m.ipi = scale(m.ipi);
  m.pi_fixed = scale(m.pi_fixed);
  m.pi_swap = scale(m.pi_swap);
  m.pi_queue_visit = scale(m.pi_queue_visit);
  m.sem_fixed = scale(m.sem_fixed);
  m.sem_cse_check = scale(m.sem_cse_check);
  m.waitq_visit = scale(m.waitq_visit);
  m.mailbox_fixed = scale(m.mailbox_fixed);
  m.copy_per_word = scale(m.copy_per_word);
  m.statemsg_fixed = scale(m.statemsg_fixed);
  m.stats_sample = scale(m.stats_sample);
  return m;
}

CostModel CostModel::MC68332_16MHz() {
  // First-order clock scaling of the 68040 profile (the 68332's simpler core
  // makes this optimistic, but the shape claims do not depend on it).
  return MC68040_25MHz().ScaledBy(25.0 / 16.0);
}

CostModel CostModel::Zero() {
  // Value-initialized Durations are all zero.
  return CostModel{};
}

}  // namespace emeralds
