#include "src/hal/interrupts.h"

namespace emeralds {

void InterruptController::Attach(int line, IrqHandler handler, void* context) {
  CheckLine(line);
  lines_[line].handler = handler;
  lines_[line].context = context;
}

void InterruptController::Detach(int line) {
  CheckLine(line);
  lines_[line].handler = nullptr;
  lines_[line].context = nullptr;
}

void InterruptController::Raise(int line) {
  CheckLine(line);
  lines_[line].pending = true;
  ++lines_[line].raised;
}

void InterruptController::SetEnabled(int line, bool enabled) {
  CheckLine(line);
  lines_[line].enabled = enabled;
}

bool InterruptController::enabled(int line) const {
  CheckLine(line);
  return lines_[line].enabled;
}

bool InterruptController::pending(int line) const {
  CheckLine(line);
  return lines_[line].pending;
}

bool InterruptController::AnyDeliverable() const {
  if (!global_enable_) {
    return false;
  }
  for (const Line& line : lines_) {
    if (line.pending && line.enabled && line.handler != nullptr) {
      return true;
    }
  }
  return false;
}

int InterruptController::DispatchPending() {
  int dispatched = 0;
  bool progressed = true;
  while (global_enable_ && progressed) {
    progressed = false;
    for (int i = 0; i < kNumIrqLines; ++i) {
      Line& line = lines_[i];
      if (line.pending && line.enabled && line.handler != nullptr) {
        line.pending = false;
        ++line.dispatched;
        ++dispatched;
        progressed = true;
        line.handler(line.context, i);
      }
    }
  }
  return dispatched;
}

uint64_t InterruptController::raised_count(int line) const {
  CheckLine(line);
  return lines_[line].raised;
}

uint64_t InterruptController::dispatched_count(int line) const {
  CheckLine(line);
  return lines_[line].dispatched;
}

}  // namespace emeralds
