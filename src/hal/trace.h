// Execution tracing.
//
// The trace sink records timestamped kernel events (context switches, job
// releases, deadline misses, semaphore operations) into a bounded ring.
// Figure 2's schedule trace, many integration tests, and the src/obs/
// observability pipeline (Perfetto export, trace analyzer) are built on it.

#ifndef SRC_HAL_TRACE_H_
#define SRC_HAL_TRACE_H_

#include <cstdint>
#include <cstdio>

#include "src/base/ring_buffer.h"
#include "src/base/time.h"

namespace emeralds {

enum class TraceEventType : uint8_t {
  kContextSwitch,   // arg0 = outgoing thread id (-1 = idle), arg1 = incoming
  kJobRelease,      // arg0 = thread id, arg1 = job number
  kJobComplete,     // arg0 = thread id, arg1 = job number
  kDeadlineMiss,    // arg0 = thread id, arg1 = job number
  kSemAcquire,      // arg0 = thread id, arg1 = semaphore id
  kSemAcquireBlock, // arg0 = thread id, arg1 = semaphore id
  kSemRelease,      // arg0 = thread id, arg1 = semaphore id
  kSemCseEarlyPi,   // arg0 = thread id, arg1 = semaphore id (saved switch)
  kPiInherit,       // arg0 = holder thread id, arg1 = donor thread id
  kPiRestore,       // arg0 = holder thread id, arg1 = semaphore id
  kIrq,             // arg0 = line
  kMsgSend,         // arg0 = thread id, arg1 = object id
  kMsgRecv,         // arg0 = thread id, arg1 = object id
  kThreadExit,      // arg0 = thread id
  kPiChainLimit,    // arg0 = thread id, arg1 = semaphore id (depth cap hit)
  kHeadroomLow,     // arg0 = thread id, arg1 = predicted slack in us (signed)
  kChainEmit,       // arg0 = token origin, arg1 = packed endpoint, arg2 = hop/actor
  kChainConsume,    // arg0 = token origin, arg1 = packed endpoint, arg2 = hop/actor
  kTraceEpoch,      // arg0 = epoch number (ring was reset; window starts here)
  kOverheadSpan,    // arg0 = OverheadSpanPack(bucket, core), arg1 = span ns,
                    // arg2 = current thread id + 1 (0 = none). Recorded at the
                    // *end* of every non-user, non-idle clock advance so the
                    // postmortem engine can classify kernel overhead exactly.
  kThreadBlock,     // arg0 = thread id, arg1 = BlockReason (non-sem waits)
  kThreadReady,     // arg0 = thread id, arg1 = BlockReason it was blocked under
};

// One past the last enumerator. Keep in sync when adding event types; the
// round-trip test over [0, kNumTraceEventTypes) catches a missing name.
inline constexpr int kNumTraceEventTypes =
    static_cast<int>(TraceEventType::kThreadReady) + 1;

// kOverheadSpan arg0 packing: cycle bucket in the high byte region, core id
// in the low byte. Both fit comfortably (16 buckets, <= 8 cores).
constexpr int32_t OverheadSpanPack(int bucket, int core) {
  return static_cast<int32_t>((static_cast<uint32_t>(bucket) << 8) |
                              (static_cast<uint32_t>(core) & 0xffu));
}
constexpr int OverheadSpanBucket(int32_t packed) {
  return static_cast<int>(static_cast<uint32_t>(packed) >> 8);
}
constexpr int OverheadSpanCore(int32_t packed) {
  return static_cast<int>(static_cast<uint32_t>(packed) & 0xffu);
}

// --- Causal event-chain encoding -----------------------------------------
//
// kChainEmit / kChainConsume carry a causal token through three packed int32
// args so the chain analyzer (src/obs/chains.h) can reconstruct end-to-end
// dataflow across queueing boundaries:
//   arg0: token origin id (minted from 1, monotone per run; 0 is invalid)
//   arg1: producing/consuming endpoint, ChainEndpointPack(kind, channel id)
//   arg2: ChainHopPack(hop, actor) — hop count plus the acting thread.
// An emit records the producer-side token (origin, hop); its matching
// consume records (origin, hop + 1) and names the consuming thread. Consume
// events may be recorded while the kernel still runs in producer or ISR
// context (direct handoffs), so the actor is always explicit in arg2 and is
// never the thread the trace replayer believes is running.

enum class ChainEndpointKind : int {
  kIrq = 1,   // channel id = IRQ line
  kRelease,   // channel id = thread id (periodic job release)
  kSem,       // channel id = semaphore id (counting handoff)
  kCondvar,   // channel id = condvar id
  kMailbox,   // channel id = mailbox id
  kSmsg,      // channel id = state-message buffer id
};

const char* ChainEndpointKindToString(ChainEndpointKind kind);

constexpr int32_t ChainEndpointPack(ChainEndpointKind kind, int channel_id) {
  return static_cast<int32_t>((static_cast<uint32_t>(kind) << 24) |
                              (static_cast<uint32_t>(channel_id) & 0xffffffu));
}
constexpr ChainEndpointKind ChainEndpointKindOf(int32_t packed) {
  return static_cast<ChainEndpointKind>((static_cast<uint32_t>(packed) >> 24) & 0x7fu);
}
constexpr int ChainEndpointChannel(int32_t packed) {
  return static_cast<int>(static_cast<uint32_t>(packed) & 0xffffffu);
}

// arg2 packing: hop in the high half, actor thread id (+1, so 0 means "no
// thread" — ISR context) in the low half.
constexpr int32_t ChainHopPack(int hop, int actor_thread_id) {
  return static_cast<int32_t>((static_cast<uint32_t>(hop & 0x7fff) << 16) |
                              (static_cast<uint32_t>(actor_thread_id + 1) & 0xffffu));
}
constexpr int ChainHopOf(int32_t packed) {
  return static_cast<int>((static_cast<uint32_t>(packed) >> 16) & 0x7fffu);
}
// -1 when the event was recorded from ISR context (no acting thread).
constexpr int ChainActorOf(int32_t packed) {
  return static_cast<int>(static_cast<uint32_t>(packed) & 0xffffu) - 1;
}

// Hop counts are capped so cyclic pipelines cannot grow tokens without
// bound; a token that reaches the cap is dropped instead of propagated.
inline constexpr int kMaxChainHops = 255;

// The causal token itself: carried in the producing thread's TCB, stamped
// into channel storage (mailbox message, state-message slot, counting-sem
// handoff slot) at emit, and moved onto the consuming thread's TCB at
// consume with the hop count bumped. origin == 0 means "no token".
struct CausalToken {
  uint32_t origin = 0;
  uint16_t hop = 0;
  // Mint instant, stamped when the origin token is created and carried
  // unchanged through every hop: the streaming chain-e2e histogram is
  // final-consume-time minus mint. Not traced and not digested — purely a
  // telemetry rider.
  Instant mint;
  bool valid() const { return origin != 0; }
  void clear() {
    origin = 0;
    hop = 0;
    mint = Instant();
  }
};

const char* TraceEventTypeToString(TraceEventType type);

// Inverse of TraceEventTypeToString; false when `name` is not an event name.
// The trace CSV importer (src/obs/trace_csv.h) is built on it.
bool TraceEventTypeFromString(const char* name, TraceEventType* out);

struct TraceEvent {
  Instant time;
  TraceEventType type = TraceEventType::kContextSwitch;
  int32_t arg0 = 0;
  int32_t arg1 = 0;
  int32_t arg2 = 0;
};

class TraceSink {
 public:
  // `capacity` == 0 disables recording entirely (counting still works).
  explicit TraceSink(size_t capacity)
      : enabled_(capacity > 0), events_(capacity > 0 ? capacity : 1) {}

  void Record(Instant time, TraceEventType type, int32_t arg0, int32_t arg1,
              int32_t arg2 = 0) {
    ++total_recorded_;
    if (enabled_) {
      if (events_.push_overwrite(TraceEvent{time, type, arg0, arg1, arg2})) {
        ++dropped_;
      }
    } else {
      ++dropped_;
    }
  }

  // Oldest-first access to the retained window.
  size_t size() const { return enabled_ ? events_.size() : 0; }
  const TraceEvent& at(size_t index) const { return events_.at(index); }

  uint64_t total_recorded() const { return total_recorded_; }

  // Events recorded but not retained: ring evictions plus everything recorded
  // while retention is disabled. total_recorded() == size() + dropped().
  // Non-zero means the retained window is a *suffix* of the run and derived
  // metrics (histograms, invariant checks) describe only that window.
  uint64_t dropped() const { return dropped_; }

  void Clear() {
    events_.clear();
    total_recorded_ = 0;
    dropped_ = 0;
    epochs_ = 0;
  }

  // Deliberate mid-run restart of the retained window: discards the ring
  // contents, clears the dropped() counter (the discard was intentional, not
  // overflow), and records a kTraceEpoch marker as the new window's first
  // event so downstream consumers can tell "ring was reset here" apart from
  // "events were lost to overflow". total_recorded() keeps counting across
  // resets. Unlike Clear(), which wipes the sink back to construction state,
  // Reset() is the one to call while a run is in flight.
  void Reset(Instant now) {
    events_.clear();
    dropped_ = 0;
    ++epochs_;
    Record(now, TraceEventType::kTraceEpoch, static_cast<int32_t>(epochs_), 0);
  }

  // Number of Reset() calls since construction / Clear().
  uint64_t epochs() const { return epochs_; }

  // Writes a human-readable dump of the retained events to `out`
  // (default stdout), followed by a drop note when events were lost.
  void Dump(std::FILE* out = stdout) const;

  // Writes the retained events as CSV (time_us,event,arg0,arg1,arg2) to
  // `out`, for external plotting (Gantt charts of the schedule) and
  // trace_inspect replay. When events were dropped, a trailing "# dropped=N"
  // comment line records the loss. Returns the number of data rows written.
  size_t ExportCsv(std::FILE* out) const;

 private:
  bool enabled_;
  RingBuffer<TraceEvent> events_;
  uint64_t total_recorded_ = 0;
  uint64_t dropped_ = 0;
  uint64_t epochs_ = 0;
};

}  // namespace emeralds

#endif  // SRC_HAL_TRACE_H_
