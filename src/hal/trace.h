// Execution tracing.
//
// The trace sink records timestamped kernel events (context switches, job
// releases, deadline misses, semaphore operations) into a bounded ring.
// Figure 2's schedule trace and many integration tests are built on it.

#ifndef SRC_HAL_TRACE_H_
#define SRC_HAL_TRACE_H_

#include <cstdint>
#include <cstdio>

#include "src/base/ring_buffer.h"
#include "src/base/time.h"

namespace emeralds {

enum class TraceEventType : uint8_t {
  kContextSwitch,   // arg0 = outgoing thread id (-1 = idle), arg1 = incoming
  kJobRelease,      // arg0 = thread id, arg1 = job number
  kJobComplete,     // arg0 = thread id, arg1 = job number
  kDeadlineMiss,    // arg0 = thread id, arg1 = job number
  kSemAcquire,      // arg0 = thread id, arg1 = semaphore id
  kSemAcquireBlock, // arg0 = thread id, arg1 = semaphore id
  kSemRelease,      // arg0 = thread id, arg1 = semaphore id
  kSemCseEarlyPi,   // arg0 = thread id, arg1 = semaphore id (saved switch)
  kPiInherit,       // arg0 = holder thread id, arg1 = donor thread id
  kPiRestore,       // arg0 = holder thread id, arg1 = semaphore id
  kIrq,             // arg0 = line
  kMsgSend,         // arg0 = thread id, arg1 = object id
  kMsgRecv,         // arg0 = thread id, arg1 = object id
  kThreadExit,      // arg0 = thread id
};

const char* TraceEventTypeToString(TraceEventType type);

struct TraceEvent {
  Instant time;
  TraceEventType type = TraceEventType::kContextSwitch;
  int32_t arg0 = 0;
  int32_t arg1 = 0;
};

class TraceSink {
 public:
  // `capacity` == 0 disables recording entirely (counting still works).
  explicit TraceSink(size_t capacity)
      : enabled_(capacity > 0), events_(capacity > 0 ? capacity : 1) {}

  void Record(Instant time, TraceEventType type, int32_t arg0, int32_t arg1) {
    ++total_recorded_;
    if (enabled_) {
      events_.push_overwrite(TraceEvent{time, type, arg0, arg1});
    }
  }

  // Oldest-first access to the retained window.
  size_t size() const { return enabled_ ? events_.size() : 0; }
  const TraceEvent& at(size_t index) const { return events_.at(index); }

  uint64_t total_recorded() const { return total_recorded_; }

  void Clear() {
    events_.clear();
    total_recorded_ = 0;
  }

  // Writes a human-readable dump of the retained events to stdout.
  void Dump() const;

  // Writes the retained events as CSV (time_us,event,arg0,arg1) to `out`,
  // for external plotting (Gantt charts of the schedule). Returns the number
  // of rows written.
  size_t ExportCsv(std::FILE* out) const;

 private:
  bool enabled_;
  RingBuffer<TraceEvent> events_;
  uint64_t total_recorded_ = 0;
};

}  // namespace emeralds

#endif  // SRC_HAL_TRACE_H_
