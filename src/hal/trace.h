// Execution tracing.
//
// The trace sink records timestamped kernel events (context switches, job
// releases, deadline misses, semaphore operations) into a bounded ring.
// Figure 2's schedule trace, many integration tests, and the src/obs/
// observability pipeline (Perfetto export, trace analyzer) are built on it.

#ifndef SRC_HAL_TRACE_H_
#define SRC_HAL_TRACE_H_

#include <cstdint>
#include <cstdio>

#include "src/base/ring_buffer.h"
#include "src/base/time.h"

namespace emeralds {

enum class TraceEventType : uint8_t {
  kContextSwitch,   // arg0 = outgoing thread id (-1 = idle), arg1 = incoming
  kJobRelease,      // arg0 = thread id, arg1 = job number
  kJobComplete,     // arg0 = thread id, arg1 = job number
  kDeadlineMiss,    // arg0 = thread id, arg1 = job number
  kSemAcquire,      // arg0 = thread id, arg1 = semaphore id
  kSemAcquireBlock, // arg0 = thread id, arg1 = semaphore id
  kSemRelease,      // arg0 = thread id, arg1 = semaphore id
  kSemCseEarlyPi,   // arg0 = thread id, arg1 = semaphore id (saved switch)
  kPiInherit,       // arg0 = holder thread id, arg1 = donor thread id
  kPiRestore,       // arg0 = holder thread id, arg1 = semaphore id
  kIrq,             // arg0 = line
  kMsgSend,         // arg0 = thread id, arg1 = object id
  kMsgRecv,         // arg0 = thread id, arg1 = object id
  kThreadExit,      // arg0 = thread id
  kPiChainLimit,    // arg0 = thread id, arg1 = semaphore id (depth cap hit)
  kHeadroomLow,     // arg0 = thread id, arg1 = predicted slack in us (signed)
};

// One past the last enumerator. Keep in sync when adding event types; the
// round-trip test over [0, kNumTraceEventTypes) catches a missing name.
inline constexpr int kNumTraceEventTypes =
    static_cast<int>(TraceEventType::kHeadroomLow) + 1;

const char* TraceEventTypeToString(TraceEventType type);

// Inverse of TraceEventTypeToString; false when `name` is not an event name.
// The trace CSV importer (src/obs/trace_csv.h) is built on it.
bool TraceEventTypeFromString(const char* name, TraceEventType* out);

struct TraceEvent {
  Instant time;
  TraceEventType type = TraceEventType::kContextSwitch;
  int32_t arg0 = 0;
  int32_t arg1 = 0;
};

class TraceSink {
 public:
  // `capacity` == 0 disables recording entirely (counting still works).
  explicit TraceSink(size_t capacity)
      : enabled_(capacity > 0), events_(capacity > 0 ? capacity : 1) {}

  void Record(Instant time, TraceEventType type, int32_t arg0, int32_t arg1) {
    ++total_recorded_;
    if (enabled_) {
      if (events_.push_overwrite(TraceEvent{time, type, arg0, arg1})) {
        ++dropped_;
      }
    } else {
      ++dropped_;
    }
  }

  // Oldest-first access to the retained window.
  size_t size() const { return enabled_ ? events_.size() : 0; }
  const TraceEvent& at(size_t index) const { return events_.at(index); }

  uint64_t total_recorded() const { return total_recorded_; }

  // Events recorded but not retained: ring evictions plus everything recorded
  // while retention is disabled. total_recorded() == size() + dropped().
  // Non-zero means the retained window is a *suffix* of the run and derived
  // metrics (histograms, invariant checks) describe only that window.
  uint64_t dropped() const { return dropped_; }

  void Clear() {
    events_.clear();
    total_recorded_ = 0;
    dropped_ = 0;
  }

  // Writes a human-readable dump of the retained events to `out`
  // (default stdout), followed by a drop note when events were lost.
  void Dump(std::FILE* out = stdout) const;

  // Writes the retained events as CSV (time_us,event,arg0,arg1) to `out`,
  // for external plotting (Gantt charts of the schedule) and trace_inspect
  // replay. When events were dropped, a trailing "# dropped=N" comment line
  // records the loss. Returns the number of data rows written.
  size_t ExportCsv(std::FILE* out) const;

 private:
  bool enabled_;
  RingBuffer<TraceEvent> events_;
  uint64_t total_recorded_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace emeralds

#endif  // SRC_HAL_TRACE_H_
