#include "src/hal/devices.h"

#include <cmath>

namespace emeralds {

// --- FieldbusDevice ---

FieldbusDevice::FieldbusDevice(Hardware& hw, const Config& config)
    : hw_(hw),
      config_(config),
      rng_(config.seed),
      rx_queue_(config.rx_queue_depth),
      tx_timer_(*this) {
  EM_ASSERT(config.bit_rate > 0);
  EM_ASSERT(config.rx_period.is_positive());
}

FieldbusDevice::~FieldbusDevice() {
  Stop();
  hw_.DisarmTimer(tx_timer_);
}

void FieldbusDevice::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ScheduleNextRx();
}

void FieldbusDevice::Stop() {
  running_ = false;
  hw_.DisarmTimer(*this);
}

FieldbusDevice::Frame FieldbusDevice::ReadFrame() {
  EM_ASSERT_MSG(rx_ready(), "ReadFrame with empty RX queue");
  return rx_queue_.pop();
}

bool FieldbusDevice::WriteFrame(const Frame& frame) {
  if (tx_busy_) {
    return false;
  }
  tx_busy_ = true;
  tx_complete_at_ = hw_.now() + FrameTxTime(frame);
  hw_.ArmTimer(tx_timer_, tx_complete_at_);
  return true;
}

Duration FieldbusDevice::FrameTxTime(const Frame& frame) const {
  // CAN-style framing: ~47 bits of overhead plus 8 bits per payload byte.
  int64_t bits = 47 + 8 * static_cast<int64_t>(frame.payload.size());
  return Nanoseconds(bits * 1000000000 / config_.bit_rate);
}

void FieldbusDevice::ScheduleNextRx() {
  Duration jitter;
  if (config_.rx_jitter.is_positive()) {
    jitter = Nanoseconds(rng_.UniformInt(0, config_.rx_jitter.nanos() - 1));
  }
  hw_.ArmTimer(*this, hw_.now() + config_.rx_period + jitter);
}

void FieldbusDevice::OnExpire(Hardware& hw) {
  // RX arrival.
  Frame frame;
  frame.id = next_rx_id_++;
  for (int i = 0; i < 4; ++i) {
    frame.payload.push_back(static_cast<uint8_t>(rng_.UniformInt(0, 255)));
  }
  if (rx_queue_.push_overwrite(frame)) {
    ++rx_overruns_;
  }
  ++frames_received_;
  hw.irq().Raise(kIrqFieldbus);
  if (running_) {
    ScheduleNextRx();
  }
}

void FieldbusDevice::TxTimer::OnExpire(Hardware& hw) {
  device_.tx_busy_ = false;
  device_.tx_done_ = true;
  ++device_.frames_sent_;
  hw.irq().Raise(kIrqFieldbus);
}

// --- SensorDevice ---

SensorDevice::SensorDevice(Hardware& hw, const Config& config) : hw_(hw), config_(config) {
  EM_ASSERT(config.period.is_positive());
  EM_ASSERT(config.waveform_period.is_positive());
}

SensorDevice::~SensorDevice() { Stop(); }

void SensorDevice::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  hw_.ArmTimer(*this, hw_.now() + config_.period);
}

void SensorDevice::Stop() {
  running_ = false;
  hw_.DisarmTimer(*this);
}

void SensorDevice::OnExpire(Hardware& hw) {
  double phase = static_cast<double>(hw.now().nanos() % config_.waveform_period.nanos()) /
                 static_cast<double>(config_.waveform_period.nanos());
  latest_sample_ = config_.amplitude * std::sin(2.0 * 3.14159265358979323846 * phase);
  ++sample_seq_;
  if (config_.raise_irq) {
    hw.irq().Raise(kIrqSensor);
  }
  if (running_) {
    hw.ArmTimer(*this, hw.now() + config_.period);
  }
}

}  // namespace emeralds
