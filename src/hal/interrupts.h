// Interrupt controller model.
//
// Devices (and the programmable timer) raise IRQ lines; the kernel attaches a
// handler per line and dispatches pending interrupts at interruptible points.
// Raising a masked or already-pending line coalesces (level-triggered
// semantics), matching typical single-chip controllers.

#ifndef SRC_HAL_INTERRUPTS_H_
#define SRC_HAL_INTERRUPTS_H_

#include <cstdint>

#include "src/base/assert.h"

namespace emeralds {

inline constexpr int kNumIrqLines = 16;

// Conventional line assignments for this platform.
inline constexpr int kIrqTimer = 0;
inline constexpr int kIrqFieldbus = 1;
inline constexpr int kIrqSensor = 2;

using IrqHandler = void (*)(void* context, int line);

class InterruptController {
 public:
  InterruptController() = default;

  // Attaches `handler` to `line`; replaces any existing handler.
  void Attach(int line, IrqHandler handler, void* context);
  void Detach(int line);

  // Marks `line` pending (device side). Coalesces with an already-pending
  // interrupt.
  void Raise(int line);

  // Per-line mask (true = delivery enabled). Lines start unmasked.
  void SetEnabled(int line, bool enabled);
  bool enabled(int line) const;

  // Global interrupt-enable flag (the kernel runs its critical sections with
  // interrupts disabled).
  void SetGlobalEnable(bool enabled) { global_enable_ = enabled; }
  bool global_enable() const { return global_enable_; }

  bool pending(int line) const;
  bool AnyDeliverable() const;

  // Dispatches every deliverable pending interrupt (in line order, which
  // models fixed hardware priority). Returns the number dispatched. Handlers
  // may raise further interrupts; those are picked up in the same pass.
  int DispatchPending();

  // Statistics.
  uint64_t raised_count(int line) const;
  uint64_t dispatched_count(int line) const;

 private:
  void CheckLine(int line) const { EM_ASSERT_MSG(line >= 0 && line < kNumIrqLines,
                                                 "bad IRQ line %d", line); }

  struct Line {
    IrqHandler handler = nullptr;
    void* context = nullptr;
    bool pending = false;
    bool enabled = true;
    uint64_t raised = 0;
    uint64_t dispatched = 0;
  };

  Line lines_[kNumIrqLines];
  bool global_enable_ = true;
};

}  // namespace emeralds

#endif  // SRC_HAL_INTERRUPTS_H_
