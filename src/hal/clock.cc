#include "src/hal/clock.h"

#include "src/base/assert.h"

namespace emeralds {

void VirtualClock::AdvanceTo(Instant t) {
  EM_ASSERT_MSG(t >= now_, "clock moved backwards (%lld < %lld ns)",
                static_cast<long long>(t.nanos()), static_cast<long long>(now_.nanos()));
  now_ = t;
}

void VirtualClock::AdvanceBy(Duration d) {
  EM_ASSERT_MSG(!d.is_negative(), "negative clock advance");
  now_ += d;
}

}  // namespace emeralds
