#include "src/hal/clock.h"

#include "src/base/assert.h"

namespace emeralds {

void VirtualClock::AdvanceTo(Instant t, CycleBucket bucket) {
  EM_ASSERT_MSG(t >= now_, "clock moved backwards (%lld < %lld ns)",
                static_cast<long long>(t.nanos()), static_cast<long long>(now_.nanos()));
  ledger_.Add(bucket, t - now_);
  now_ = t;
}

void VirtualClock::AdvanceBy(Duration d, CycleBucket bucket) {
  EM_ASSERT_MSG(!d.is_negative(), "negative clock advance");
  ledger_.Add(bucket, d);
  now_ += d;
}

}  // namespace emeralds
