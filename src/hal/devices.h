// Simulated peripheral devices.
//
// The paper's target systems talk to sensors, actuators, and a 1-2 Mbit/s
// fieldbus through user-level device drivers (Figure 1). These devices give
// the driver-support path something real to drive: they act autonomously on
// hardware timers, expose register-style interfaces, and raise IRQ lines.

#ifndef SRC_HAL_DEVICES_H_
#define SRC_HAL_DEVICES_H_

#include <cstdint>

#include "src/base/ring_buffer.h"
#include "src/base/rng.h"
#include "src/base/static_vector.h"
#include "src/hal/hardware.h"

namespace emeralds {

// A fieldbus (CAN-like) network interface. Receives frames per a programmed
// arrival process and raises kIrqFieldbus per frame; transmits at the
// configured bit rate, raising the same line on TX completion (drivers read
// the status register to demultiplex).
class FieldbusDevice : public HardwareTimer {
 public:
  struct Frame {
    uint16_t id = 0;
    StaticVector<uint8_t, 8> payload;  // CAN-style short frames
  };

  struct Config {
    int64_t bit_rate = 1000000;      // 1 Mbit/s
    Duration rx_period = Milliseconds(10);
    Duration rx_jitter = Duration(); // uniform [0, jitter) added per arrival
    size_t rx_queue_depth = 16;
    uint64_t seed = 1;
  };

  FieldbusDevice(Hardware& hw, const Config& config);
  ~FieldbusDevice() override;

  // Starts the periodic RX arrival process.
  void Start();
  void Stop();

  // --- Register interface (what a driver thread touches) ---

  bool rx_ready() const { return !rx_queue_.empty(); }
  bool tx_done() const { return tx_done_; }
  void ClearTxDone() { tx_done_ = false; }

  // Pops the oldest received frame; rx_ready() must be true.
  Frame ReadFrame();

  // Begins transmitting `frame`; returns false if the transmitter is busy.
  // Completion raises kIrqFieldbus with tx_done() set.
  bool WriteFrame(const Frame& frame);
  bool tx_busy() const { return tx_busy_; }

  uint64_t rx_overruns() const { return rx_overruns_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t frames_sent() const { return frames_sent_; }

 protected:
  void OnExpire(Hardware& hw) override;

 private:
  Duration FrameTxTime(const Frame& frame) const;
  void ScheduleNextRx();

  Hardware& hw_;
  Config config_;
  Rng rng_;
  RingBuffer<Frame> rx_queue_;
  bool running_ = false;
  bool tx_busy_ = false;
  bool tx_done_ = false;
  Instant tx_complete_at_;
  uint64_t rx_overruns_ = 0;
  uint64_t frames_received_ = 0;
  uint64_t frames_sent_ = 0;
  uint16_t next_rx_id_ = 0x100;

  // TX completion uses its own hardware timer so RX arrivals keep flowing
  // while a frame is on the wire.
  class TxTimer : public HardwareTimer {
   public:
    explicit TxTimer(FieldbusDevice& device) : device_(device) {}

   protected:
    void OnExpire(Hardware& hw) override;

   private:
    FieldbusDevice& device_;
  };
  TxTimer tx_timer_;
};

// A periodic sensor: every `period` it latches a new sample into a register
// and (optionally) raises kIrqSensor. The sample follows a deterministic
// waveform so control examples produce reproducible output.
class SensorDevice : public HardwareTimer {
 public:
  struct Config {
    Duration period = Milliseconds(5);
    bool raise_irq = true;
    double amplitude = 100.0;
    Duration waveform_period = Milliseconds(500);
  };

  SensorDevice(Hardware& hw, const Config& config);
  ~SensorDevice() override;

  void Start();
  void Stop();

  // Latest latched sample and its sequence number (register reads).
  double latest_sample() const { return latest_sample_; }
  uint64_t sample_seq() const { return sample_seq_; }

 protected:
  void OnExpire(Hardware& hw) override;

 private:
  Hardware& hw_;
  Config config_;
  bool running_ = false;
  double latest_sample_ = 0.0;
  uint64_t sample_seq_ = 0;
};

}  // namespace emeralds

#endif  // SRC_HAL_DEVICES_H_
