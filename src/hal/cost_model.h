// Processor cost model.
//
// The paper evaluates EMERALDS on a 25 MHz Motorola 68040; this reproduction
// runs on a virtual CPU that charges simulated time per primitive kernel
// operation. The per-operation coefficients for the scheduler queues come
// straight from the paper's Table 1 (linear/logarithmic fits measured with the
// 5 MHz on-chip timer); the remaining constants (context switch, syscall trap,
// semaphore bookkeeping) are calibrated from the Figure 11 anchor points — the
// derivation is documented in EXPERIMENTS.md.
//
// Kernel code reports *actual operation counts* (queue nodes visited, heap
// levels traversed, words copied) and the cost model converts counts to time,
// so O(1)/O(n)/O(log n) behaviour of the real implementation — not a formula —
// is what shows up on the virtual clock.

#ifndef SRC_HAL_COST_MODEL_H_
#define SRC_HAL_COST_MODEL_H_

#include "src/base/time.h"
#include "src/hal/cycles.h"

namespace emeralds {

// The three ready-queue structures measured in Table 1.
enum class QueueKind : int {
  kEdfList = 0,  // unsorted list, all tasks, O(n) select
  kRmList = 1,   // priority-sorted list, all tasks, highestp pointer
  kRmHeap = 2,   // binary heap of ready tasks
};
inline constexpr int kNumQueueKinds = 3;

enum class QueueOp : int {
  kBlock = 0,   // t_b: mark running task blocked
  kUnblock = 1, // t_u: mark blocked task ready
  kSelect = 2,  // t_s: pick next task to run
};
inline constexpr int kNumQueueOps = 3;

// The attribution bucket a queue operation's cost lands in. Kept next to the
// Table 1 coefficients so the ledger's scheduler rows and the cost model's
// charge sites cannot drift apart.
constexpr CycleBucket CycleBucketForQueueOp(QueueOp op) {
  return op == QueueOp::kBlock     ? CycleBucket::kSchedBlock
         : op == QueueOp::kUnblock ? CycleBucket::kSchedUnblock
                                   : CycleBucket::kSchedSelect;
}

// cost = fixed + per_unit * units, where `units` is the operation count the
// kernel actually performed (nodes visited / heap levels traversed).
struct LinearCost {
  Duration fixed;
  Duration per_unit;

  constexpr Duration At(int units) const { return fixed + per_unit * units; }
};

struct CostModel {
  // Table 1 coefficients, indexed [QueueKind][QueueOp].
  LinearCost queue[kNumQueueKinds][kNumQueueOps];

  // CSD charges 0.55 us per queue inspected while looking for a queue with
  // ready tasks (Section 5.7).
  Duration csd_queue_parse;

  // Fixed cost of a context switch (register save/restore, address-space
  // switch); EMERALDS's "highly optimized context switching".
  Duration context_switch;

  // User->kernel->user transition for one system call.
  Duration syscall;

  // Interrupt prologue/epilogue for the timer and device interrupts.
  Duration interrupt_entry;
  Duration interrupt_exit;
  // Per expired software timer processed in the timer ISR.
  Duration timer_dispatch;
  // One virtual inter-processor interrupt: the cross-core wake a semaphore /
  // mailbox / state-message signal pays when the woken thread lives on
  // another core (partitioned SMP; threads never migrate).
  Duration ipi;

  // Priority inheritance bookkeeping that is independent of queue
  // manipulation (TCB priority fields, held-semaphore list). This is the
  // whole cost of PI for DP tasks (deadline inheritance is one TCB field).
  Duration pi_fixed;
  // One O(1) place-holder position swap in the FP queue (Section 6.2's
  // optimized PI step: eight link updates plus consistency checks).
  Duration pi_swap;
  // Per queue node visited when PI must re-insert a task into a sorted queue
  // (the un-optimized standard path).
  Duration pi_queue_visit;

  // Semaphore fast-path bookkeeping (lock test, owner update, wait-queue
  // linkage), excluding PI and scheduler costs.
  Duration sem_fixed;
  // The CSE availability check performed on the unblock path (and by the
  // trivial acquire_sem() call of a thread whose lock was already granted).
  Duration sem_cse_check;
  // Per node visited when inserting into a priority-ordered wait queue.
  Duration waitq_visit;

  // Mailbox IPC: per-message fixed overhead (kernel copy setup, queue
  // management) and per-4-byte-word copy cost.
  Duration mailbox_fixed;
  Duration copy_per_word;

  // State-message IPC: fixed overhead of the user-level send/receive stubs
  // (index arithmetic, version check); copies cost copy_per_word.
  Duration statemsg_fixed;

  // One KernelStats snapshot into the sampler ring (the observability
  // subsystem's own overhead — it shows up in the ledger like everything
  // else, under CycleBucket::kStatsObs).
  Duration stats_sample;

  Duration QueueCost(QueueKind kind, QueueOp op, int units) const {
    return queue[static_cast<int>(kind)][static_cast<int>(op)].At(units);
  }

  // Profile calibrated to the paper's 25 MHz Motorola 68040 measurements.
  static CostModel MC68040_25MHz();

  // The slower end of the paper's target range ("16 MHz Motorola 68332" class
  // single-chip controllers): every cost scaled by the clock ratio. Shapes
  // are identical; absolute overheads — and therefore breakdown utilizations
  // on short-period workloads — are visibly worse.
  static CostModel MC68332_16MHz();

  // Returns this model with every cost multiplied by `factor` (e.g. a slower
  // clock). Factor must be positive.
  CostModel ScaledBy(double factor) const;

  // All-zero profile: kernel operations take no virtual time. Used by
  // functional tests that assert on logical behaviour and exact instants.
  static CostModel Zero();
};

}  // namespace emeralds

#endif  // SRC_HAL_COST_MODEL_H_
