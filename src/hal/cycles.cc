#include "src/hal/cycles.h"

namespace emeralds {

const char* CycleBucketToString(CycleBucket bucket) {
  switch (bucket) {
    case CycleBucket::kUser:
      return "user";
    case CycleBucket::kSchedSelect:
      return "sched_select";
    case CycleBucket::kSchedBlock:
      return "sched_block";
    case CycleBucket::kSchedUnblock:
      return "sched_unblock";
    case CycleBucket::kSchedParse:
      return "sched_parse";
    case CycleBucket::kContextSwitch:
      return "context_switch";
    case CycleBucket::kSyscall:
      return "syscall";
    case CycleBucket::kSemaphore:
      return "semaphore";
    case CycleBucket::kPi:
      return "pi";
    case CycleBucket::kIpc:
      return "ipc";
    case CycleBucket::kIrq:
      return "irq";
    case CycleBucket::kTimerSvc:
      return "timer_service";
    case CycleBucket::kStatsObs:
      return "stats_obs";
    case CycleBucket::kIpi:
      return "ipi";
    case CycleBucket::kIdle:
      return "idle";
    case CycleBucket::kUnattributed:
      return "unattributed";
  }
  return "?";
}

}  // namespace emeralds
