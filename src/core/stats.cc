#include "src/core/stats.h"

#include <cstdio>

namespace emeralds {

const char* ChargeCategoryToString(ChargeCategory category) {
  switch (category) {
    case ChargeCategory::kScheduling:
      return "scheduling";
    case ChargeCategory::kContextSwitch:
      return "context_switch";
    case ChargeCategory::kSyscall:
      return "syscall";
    case ChargeCategory::kSemaphore:
      return "semaphore";
    case ChargeCategory::kPi:
      return "priority_inheritance";
    case ChargeCategory::kIpc:
      return "ipc";
    case ChargeCategory::kInterrupt:
      return "interrupt";
    case ChargeCategory::kTimerSvc:
      return "timer_service";
    case ChargeCategory::kStatsObs:
      return "stats_observability";
  }
  return "?";
}

CycleConservation CheckCycleConservation(const KernelStats& stats, Instant now) {
  CycleConservation c;
  c.elapsed = (now - stats.cycles_epoch) * stats.num_cores;
  c.ledger_total = stats.cycle_total();
  c.residual = c.elapsed - c.ledger_total;
  return c;
}

CycleConservation CheckCoreCycleConservation(const KernelStats& stats, int core, Instant now) {
  CycleConservation c;
  c.elapsed = now - stats.cycles_epoch;
  c.ledger_total = core >= 0 && core < kMaxStatCores ? stats.core_cycles[core].total() : Duration();
  c.residual = c.elapsed - c.ledger_total;
  return c;
}

void PrintKernelStats(const KernelStats& stats, std::FILE* out) {
  std::fprintf(out, "kernel time breakdown:\n");
  std::fprintf(out, "  %-22s %12.1f us\n", "application compute", stats.compute_time.micros_f());
  std::fprintf(out, "  %-22s %12.1f us\n", "idle", stats.idle_time.micros_f());
  for (int c = 0; c < kNumChargeCategories; ++c) {
    if (stats.charged[c].is_positive()) {
      std::fprintf(out, "  %-22s %12.1f us\n",
                   ChargeCategoryToString(static_cast<ChargeCategory>(c)),
                   stats.charged[c].micros_f());
    }
  }
  std::fprintf(out, "cycle ledger (since epoch %lld us):\n",
               static_cast<long long>(stats.cycles_epoch.micros()));
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    if (stats.cycles.buckets[b].is_positive()) {
      std::fprintf(out, "  %-22s %12.1f us\n",
                   CycleBucketToString(static_cast<CycleBucket>(b)),
                   stats.cycles.buckets[b].micros_f());
    }
  }
  std::fprintf(out, "  %-22s %12.1f us\n", "ledger total", stats.cycle_total().micros_f());
  std::fprintf(out, "scheduler: %llu selections, %llu context switches\n",
               static_cast<unsigned long long>(stats.selections),
               static_cast<unsigned long long>(stats.context_switches));
  std::fprintf(out, "jobs: %llu released, %llu completed, %llu deadline misses\n",
               static_cast<unsigned long long>(stats.jobs_released),
               static_cast<unsigned long long>(stats.jobs_completed),
               static_cast<unsigned long long>(stats.deadline_misses));
  std::fprintf(out,
               "semaphores: %llu acquires (%llu contended), PI %llu "
               "(swaps %llu, reinserts %llu), CSE saved %llu switches\n",
               static_cast<unsigned long long>(stats.sem_acquires),
               static_cast<unsigned long long>(stats.sem_contended),
               static_cast<unsigned long long>(stats.pi_inherits),
               static_cast<unsigned long long>(stats.pi_swaps),
               static_cast<unsigned long long>(stats.pi_reinserts),
               static_cast<unsigned long long>(stats.cse_switches_saved));
  std::fprintf(out,
               "chains: %llu e2e completions observed, %llu e2e overruns\n",
               static_cast<unsigned long long>(stats.chain_e2e_hist.count()),
               static_cast<unsigned long long>(stats.chain_e2e_overruns));
  std::fprintf(out, "stats snapshots: %llu unread snapshots dropped\n",
               static_cast<unsigned long long>(stats.stats_snapshot_drops));
  std::fprintf(out,
               "ipc: %llu mailbox sends, %llu receives; %llu state-msg writes, "
               "%llu reads (%llu retries)\n",
               static_cast<unsigned long long>(stats.mailbox_sends),
               static_cast<unsigned long long>(stats.mailbox_receives),
               static_cast<unsigned long long>(stats.smsg_writes),
               static_cast<unsigned long long>(stats.smsg_reads),
               static_cast<unsigned long long>(stats.smsg_read_retries));
}

StatsDelta MakeStatsDelta(Instant now, const KernelStats& current, const KernelStats& base) {
  StatsDelta d;
  d.time = now;
  for (int c = 0; c < kNumChargeCategories; ++c) {
    d.charged[c] = current.charged[c] - base.charged[c];
  }
  d.sem_path_time = current.sem_path_time - base.sem_path_time;
  d.compute_time = current.compute_time - base.compute_time;
  d.idle_time = current.idle_time - base.idle_time;
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    d.cycles.buckets[b] = current.cycles.buckets[b] - base.cycles.buckets[b];
  }
  d.context_switches = current.context_switches - base.context_switches;
  d.jobs_released = current.jobs_released - base.jobs_released;
  d.jobs_completed = current.jobs_completed - base.jobs_completed;
  d.deadline_misses = current.deadline_misses - base.deadline_misses;
  d.sem_acquires = current.sem_acquires - base.sem_acquires;
  d.sem_contended = current.sem_contended - base.sem_contended;
  d.pi_inherits = current.pi_inherits - base.pi_inherits;
  d.cse_switches_saved = current.cse_switches_saved - base.cse_switches_saved;
  d.interrupts = current.interrupts - base.interrupts;
  d.timer_dispatches = current.timer_dispatches - base.timer_dispatches;
  d.headroom_low_events = current.headroom_low_events - base.headroom_low_events;
  d.ipis = current.ipis - base.ipis;
  d.chain_e2e_overruns = current.chain_e2e_overruns - base.chain_e2e_overruns;
  d.chain_origins = current.chain_origins - base.chain_origins;
  d.stats_snapshot_drops = current.stats_snapshot_drops - base.stats_snapshot_drops;
  d.response_hist = Log2Histogram::Delta(current.response_hist, base.response_hist);
  d.headroom_hist = Log2Histogram::Delta(current.headroom_hist, base.headroom_hist);
  d.chain_e2e_hist = Log2Histogram::Delta(current.chain_e2e_hist, base.chain_e2e_hist);
  return d;
}

bool StatsSampler::Sample(Instant now, const KernelStats& current) {
  bool overwrote = samples_.push_overwrite(MakeStatsDelta(now, current, last_));
  if (overwrote) {
    ++dropped_;
  }
  last_ = current;
  return overwrote;
}

}  // namespace emeralds
