#include "src/core/stats.h"

#include <cstdio>

namespace emeralds {

const char* ChargeCategoryToString(ChargeCategory category) {
  switch (category) {
    case ChargeCategory::kScheduling:
      return "scheduling";
    case ChargeCategory::kContextSwitch:
      return "context_switch";
    case ChargeCategory::kSyscall:
      return "syscall";
    case ChargeCategory::kSemaphore:
      return "semaphore";
    case ChargeCategory::kPi:
      return "priority_inheritance";
    case ChargeCategory::kIpc:
      return "ipc";
    case ChargeCategory::kInterrupt:
      return "interrupt";
    case ChargeCategory::kTimerSvc:
      return "timer_service";
  }
  return "?";
}

void PrintKernelStats(const KernelStats& stats) {
  std::printf("kernel time breakdown:\n");
  std::printf("  %-22s %12.1f us\n", "application compute", stats.compute_time.micros_f());
  std::printf("  %-22s %12.1f us\n", "idle", stats.idle_time.micros_f());
  for (int c = 0; c < kNumChargeCategories; ++c) {
    if (stats.charged[c].is_positive()) {
      std::printf("  %-22s %12.1f us\n", ChargeCategoryToString(static_cast<ChargeCategory>(c)),
                  stats.charged[c].micros_f());
    }
  }
  std::printf("scheduler: %llu selections, %llu context switches\n",
              static_cast<unsigned long long>(stats.selections),
              static_cast<unsigned long long>(stats.context_switches));
  std::printf("jobs: %llu released, %llu completed, %llu deadline misses\n",
              static_cast<unsigned long long>(stats.jobs_released),
              static_cast<unsigned long long>(stats.jobs_completed),
              static_cast<unsigned long long>(stats.deadline_misses));
  std::printf("semaphores: %llu acquires (%llu contended), PI %llu "
              "(swaps %llu, reinserts %llu), CSE saved %llu switches\n",
              static_cast<unsigned long long>(stats.sem_acquires),
              static_cast<unsigned long long>(stats.sem_contended),
              static_cast<unsigned long long>(stats.pi_inherits),
              static_cast<unsigned long long>(stats.pi_swaps),
              static_cast<unsigned long long>(stats.pi_reinserts),
              static_cast<unsigned long long>(stats.cse_switches_saved));
  std::printf("ipc: %llu mailbox sends, %llu receives; %llu state-msg writes, "
              "%llu reads (%llu retries)\n",
              static_cast<unsigned long long>(stats.mailbox_sends),
              static_cast<unsigned long long>(stats.mailbox_receives),
              static_cast<unsigned long long>(stats.smsg_writes),
              static_cast<unsigned long long>(stats.smsg_reads),
              static_cast<unsigned long long>(stats.smsg_read_retries));
}

}  // namespace emeralds
