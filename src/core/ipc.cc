// Intra-node IPC (Section 7): mailboxes and state messages.
//
// Mailboxes are conventional kernel-copied bounded message queues with
// priority-ordered blocking on both ends and receive timeouts. State messages
// are the EMERALDS optimization: single-writer multi-reader message variables
// whose send/receive are user-level memory operations — no kernel trap, no
// blocking — made safe by a rotating set of versioned slots. The state-message
// copies are charged as (preemptible) application compute time, so a reader
// really can be lapped by the writer mid-copy; the version check detects it
// and the reader retries, exactly as the slot-sizing analysis
// (StateMessageBuffer::MinSlots) assumes.

#include "src/core/kernel.h"

#include <cstring>

namespace emeralds {

Mailbox* Kernel::MailboxPtr(MailboxId id) {
  if (!id.valid() || static_cast<size_t>(id.value) >= mailboxes_.size()) {
    return nullptr;
  }
  return mailboxes_[id.value].get();
}

StateMessageBuffer* Kernel::SmsgPtr(SmsgId id) {
  if (!id.valid() || static_cast<size_t>(id.value) >= smsgs_.size()) {
    return nullptr;
  }
  return smsgs_[id.value].get();
}

Duration Kernel::CopyCost(size_t bytes) const {
  // Word-granular copies (4-byte words, rounded up).
  return cost_.copy_per_word * static_cast<int64_t>((bytes + 3) / 4);
}

// --- Mailboxes ---

Kernel::SyscallOutcome Kernel::SysSend(Tcb& t, MailboxId id, std::span<const uint8_t> data,
                                       bool wait) {
  EM_ASSERT(&t == cores_[t.core]->current);
  ++stats_.syscalls;
  Charge(ChargeCategory::kSyscall, cost_.syscall);
  Mailbox* mbox = MailboxPtr(id);
  if (mbox == nullptr) {
    t.syscall_status = Status::kBadHandle;
    return {false};
  }
  if (!mbox->access.Allows(t.process)) {
    t.syscall_status = Status::kPermissionDenied;
    return {false};
  }
  if (data.size() > kMaxMessageBytes) {
    t.syscall_status = Status::kInvalidArgument;
    return {false};
  }
  Charge(ChargeCategory::kIpc, cost_.mailbox_fixed);

  if (!mbox->recv_waiters.empty()) {
    // Direct delivery to the highest-priority blocked receiver (the queue is
    // necessarily empty when receivers wait).
    EM_ASSERT(mbox->queue->empty());
    MboxMessage message;
    for (uint8_t b : data) {
      message.bytes.push_back(b);
    }
    message.sender = t.id;
    message.sent_at = hw_.now();
    message.token = ChainEmit(ChainEndpointPack(ChainEndpointKind::kMailbox, mbox->id.value), &t);
    Charge(ChargeCategory::kIpc, CopyCost(data.size()));
    DeliverToWaiter(*mbox, std::move(message));
    ++mbox->sends;
    ++stats_.mailbox_sends;
    trace_.Record(hw_.now(), TraceEventType::kMsgSend, t.id.value, mbox->id.value);
    t.syscall_status = Status::kOk;
    if (need_resched()) {
      t.resume_pending = true;
      return {true};
    }
    return {false};
  }

  if (!mbox->queue->full()) {
    MboxMessage message;
    for (uint8_t b : data) {
      message.bytes.push_back(b);
    }
    message.sender = t.id;
    message.sent_at = hw_.now();
    message.token = ChainEmit(ChainEndpointPack(ChainEndpointKind::kMailbox, mbox->id.value), &t);
    Charge(ChargeCategory::kIpc, CopyCost(data.size()));
    mbox->queue->push(std::move(message));
    ++mbox->sends;
    ++stats_.mailbox_sends;
    trace_.Record(hw_.now(), TraceEventType::kMsgSend, t.id.value, mbox->id.value);
    t.syscall_status = Status::kOk;
    return {false};
  }

  if (!wait) {
    t.syscall_status = Status::kWouldBlock;
    return {false};
  }

  // Block until space frees; the payload is copied at admission time. The
  // span stays valid because the sender's coroutine frame is suspended.
  ++mbox->send_blocks;
  t.send_data = data;
  t.waiting_mailbox = id;
  t.syscall_status = Status::kOk;
  BlockThread(t, BlockReason::kWaitMailboxSend);
  int visits = 0;
  Tcb* insert_before = nullptr;
  for (Tcb& other : mbox->send_waiters) {
    ++visits;
    if (HigherPriority(t, other)) {
      insert_before = &other;
      break;
    }
  }
  if (insert_before != nullptr) {
    mbox->send_waiters.insert_before(*insert_before, t);
  } else {
    mbox->send_waiters.push_back(t);
  }
  Charge(ChargeCategory::kIpc, cost_.waitq_visit * visits);
  return {true};
}

Kernel::SyscallOutcome Kernel::SysRecv(Tcb& t, MailboxId id, std::span<uint8_t> buffer,
                                       Duration timeout, SemId next_sem) {
  EM_ASSERT(&t == cores_[t.core]->current);
  ++stats_.syscalls;
  Charge(ChargeCategory::kSyscall, cost_.syscall);
  Mailbox* mbox = MailboxPtr(id);
  if (mbox == nullptr) {
    t.syscall_status = Status::kBadHandle;
    return {false};
  }
  if (!mbox->access.Allows(t.process)) {
    t.syscall_status = Status::kPermissionDenied;
    return {false};
  }
  Charge(ChargeCategory::kIpc, cost_.mailbox_fixed);

  if (!mbox->queue->empty()) {
    MboxMessage message = mbox->queue->pop();
    size_t n = std::min(buffer.size(), message.bytes.size());
    if (n > 0) {
      std::memcpy(buffer.data(), message.bytes.data(), n);
    }
    Charge(ChargeCategory::kIpc, CopyCost(n));
    t.syscall_status = RecvCopyStatus(n, message.bytes.size());
    t.syscall_length = n;
    ++mbox->receives;
    ++stats_.mailbox_receives;
    trace_.Record(hw_.now(), TraceEventType::kMsgRecv, t.id.value, mbox->id.value);
    ChainConsume(ChainEndpointPack(ChainEndpointKind::kMailbox, mbox->id.value), message.token, t);
    // Space freed: admit the highest-priority blocked sender, if any.
    AdmitBlockedSender(*mbox);
    if (need_resched()) {
      t.resume_pending = true;
      return {true};
    }
    return {false};
  }

  if (timeout.is_negative()) {  // kNoWait
    t.syscall_status = Status::kWouldBlock;
    t.syscall_length = 0;
    return {false};
  }

  ++mbox->recv_blocks;
  t.recv_buffer = buffer;
  t.waiting_mailbox = id;
  t.wakeup_hint = next_sem;
  if (timeout.is_positive()) {
    ArmSoftTimer(t.timeout_timer, hw_.now() + timeout);
  }
  BlockThread(t, BlockReason::kWaitMailboxRecv);
  int visits = 0;
  Tcb* insert_before = nullptr;
  for (Tcb& other : mbox->recv_waiters) {
    ++visits;
    if (HigherPriority(t, other)) {
      insert_before = &other;
      break;
    }
  }
  if (insert_before != nullptr) {
    mbox->recv_waiters.insert_before(*insert_before, t);
  } else {
    mbox->recv_waiters.push_back(t);
  }
  Charge(ChargeCategory::kIpc, cost_.waitq_visit * visits);
  return {true};
}

// A short receive buffer cuts the payload: the caller gets the prefix that
// fits plus kTruncated, never a silent kOk.
Status Kernel::RecvCopyStatus(size_t copied, size_t message_size) {
  if (copied < message_size) {
    ++stats_.mailbox_truncations;
    return Status::kTruncated;
  }
  return Status::kOk;
}

// A blocked receive resolves exactly once — by delivery or by timeout — and
// both resolutions funnel through here so the TCB never keeps a stale wait
// record (dangling recv_buffer span, waiting_mailbox id, armed timer).
void Kernel::FinishMailboxRecvWait(Tcb& receiver) {
  CancelSoftTimer(receiver.timeout_timer);
  receiver.recv_buffer = {};
  receiver.waiting_mailbox = MailboxId();
}

void Kernel::DeliverToWaiter(Mailbox& mbox, MboxMessage&& message) {
  Tcb* receiver = mbox.recv_waiters.front();  // priority-ordered at insert
  EM_ASSERT(receiver != nullptr);
  mbox.recv_waiters.erase(*receiver);
  size_t n = std::min(receiver->recv_buffer.size(), message.bytes.size());
  if (n > 0) {
    std::memcpy(receiver->recv_buffer.data(), message.bytes.data(), n);
  }
  receiver->syscall_status = RecvCopyStatus(n, message.bytes.size());
  receiver->syscall_length = n;
  FinishMailboxRecvWait(*receiver);
  ++mbox.receives;
  ++stats_.mailbox_receives;
  trace_.Record(hw_.now(), TraceEventType::kMsgRecv, receiver->id.value, mbox.id.value);
  // Direct handoff runs in the sender's context; the consume names the
  // receiver explicitly.
  ChainConsume(ChainEndpointPack(ChainEndpointKind::kMailbox, mbox.id.value), message.token,
               *receiver);
  WakeThread(*receiver);
}

void Kernel::AdmitBlockedSender(Mailbox& mbox) {
  Tcb* sender = mbox.send_waiters.front();
  if (sender == nullptr || mbox.queue->full()) {
    return;
  }
  mbox.send_waiters.erase(*sender);
  MboxMessage message;
  for (uint8_t b : sender->send_data) {
    message.bytes.push_back(b);
  }
  message.sender = sender->id;
  message.sent_at = hw_.now();
  // The blocked send commits here, possibly in another thread's context:
  // the emit propagates the *sender's* carried token.
  message.token = ChainEmit(ChainEndpointPack(ChainEndpointKind::kMailbox, mbox.id.value), sender);
  Charge(ChargeCategory::kIpc, CopyCost(sender->send_data.size()));
  mbox.queue->push(std::move(message));
  ++mbox.sends;
  ++stats_.mailbox_sends;
  sender->send_data = {};
  sender->waiting_mailbox = MailboxId();
  sender->syscall_status = Status::kOk;
  trace_.Record(hw_.now(), TraceEventType::kMsgSend, sender->id.value, mbox.id.value);
  WakeThread(*sender);
}

// --- State messages ---

Kernel::SyscallOutcome Kernel::SysStateWrite(Tcb& t, SmsgId id, std::span<const uint8_t> data) {
  EM_ASSERT(&t == cores_[t.core]->current);
  // User-level operation: no syscall trap is charged.
  StateMessageBuffer* smsg = SmsgPtr(id);
  if (smsg == nullptr) {
    t.syscall_status = Status::kBadHandle;
    return {false};
  }
  if (!smsg->access.Allows(t.process)) {
    t.syscall_status = Status::kPermissionDenied;
    return {false};
  }
  if (data.size() > smsg->size) {
    t.syscall_status = Status::kInvalidArgument;
    return {false};
  }
  if (!smsg->writer.valid()) {
    smsg->writer = t.id;  // first writer claims the channel
  } else if (smsg->writer != t.id) {
    t.syscall_status = Status::kPermissionDenied;  // single-writer invariant
    return {false};
  }

  int slot = (smsg->latest_slot + 1) % smsg->num_slots;
  smsg->slot_seq[slot] = 0;  // invalidate while under construction
  t.pending_op = PendingOpKind::kStateWriteCommit;
  t.pending_smsg = id;
  t.pending_write_data = data;
  t.pending_slot = slot;
  // The copy runs in user time and is preemptible.
  t.remaining_compute = cost_.statemsg_fixed + CopyCost(data.size());
  if (!t.remaining_compute.is_positive()) {
    FinishStateWrite(t);
    if (need_resched()) {
      return {true};  // resume_pending already set
    }
    t.resume_pending = false;
    return {false};
  }
  return {true};
}

void Kernel::FinishStateWrite(Tcb& t) {
  StateMessageBuffer* smsg = SmsgPtr(t.pending_smsg);
  EM_ASSERT(smsg != nullptr);
  int slot = t.pending_slot;
  std::memcpy(smsg->SlotData(slot), t.pending_write_data.data(), t.pending_write_data.size());
  if (t.pending_write_data.size() < smsg->size) {
    std::memset(smsg->SlotData(slot) + t.pending_write_data.size(), 0,
                smsg->size - t.pending_write_data.size());
  }
  // Commit: bump the version and publish the slot (two atomic stores). The
  // causal token is committed with the version, so a reader whose seqlock
  // validation succeeds reads the matching token.
  smsg->slot_seq[slot] = ++smsg->latest_seq;
  smsg->slot_token[slot] =
      ChainEmit(ChainEndpointPack(ChainEndpointKind::kSmsg, smsg->id.value), &t);
  smsg->latest_slot = slot;
  ++smsg->writes;
  ++stats_.smsg_writes;
  trace_.Record(hw_.now(), TraceEventType::kMsgSend, t.id.value, smsg->id.value);
  t.pending_op = PendingOpKind::kNone;
  t.pending_write_data = {};
  t.syscall_status = Status::kOk;
  t.resume_pending = true;
}

Kernel::SyscallOutcome Kernel::SysStateRead(Tcb& t, SmsgId id, std::span<uint8_t> buffer) {
  EM_ASSERT(&t == cores_[t.core]->current);
  StateMessageBuffer* smsg = SmsgPtr(id);
  if (smsg == nullptr) {
    t.syscall_status = Status::kBadHandle;
    return {false};
  }
  if (!smsg->access.Allows(t.process)) {
    t.syscall_status = Status::kPermissionDenied;
    return {false};
  }
  if (smsg->latest_slot < 0) {
    t.syscall_status = Status::kWouldBlock;  // nothing published yet
    t.syscall_sequence = 0;
    return {false};
  }
  t.pending_op = PendingOpKind::kStateReadValidate;
  t.pending_smsg = id;
  t.pending_read_buffer = buffer;
  t.pending_slot = smsg->latest_slot;
  t.pending_seq = smsg->slot_seq[smsg->latest_slot];
  t.pending_retries = 0;
  t.remaining_compute = cost_.statemsg_fixed + CopyCost(std::min(buffer.size(), smsg->size));
  if (!t.remaining_compute.is_positive()) {
    FinishStateRead(t);
    if (need_resched()) {
      return {true};  // resume_pending already set
    }
    t.resume_pending = false;
    return {false};
  }
  return {true};
}

void Kernel::FinishStateRead(Tcb& t) {
  StateMessageBuffer* smsg = SmsgPtr(t.pending_smsg);
  EM_ASSERT(smsg != nullptr);
  int slot = t.pending_slot;
  // Seqlock-style validation: if the writer invalidated or recommitted the
  // slot during our copy window, the snapshot would have been torn — retry.
  if (smsg->slot_seq[slot] == t.pending_seq && t.pending_seq != 0) {
    size_t n = std::min(t.pending_read_buffer.size(), smsg->size);
    std::memcpy(t.pending_read_buffer.data(), smsg->SlotData(slot), n);
    t.syscall_status = Status::kOk;
    t.syscall_sequence = t.pending_seq;
    t.syscall_length = n;
    t.syscall_retries = t.pending_retries;
    ++smsg->reads;
    ++stats_.smsg_reads;
    trace_.Record(hw_.now(), TraceEventType::kMsgRecv, t.id.value, smsg->id.value);
    // Re-reads of the same slot consume the same emit — allowed by design
    // (state messages are sampled, not queued).
    ChainConsume(ChainEndpointPack(ChainEndpointKind::kSmsg, smsg->id.value),
                 smsg->slot_token[slot], t);
    t.pending_op = PendingOpKind::kNone;
    t.pending_read_buffer = {};
    t.resume_pending = true;
    return;
  }
  ++smsg->read_retries;
  ++stats_.smsg_read_retries;
  ++t.pending_retries;
  if (t.pending_retries > 8) {
    // Pathologically under-sized buffer (see MinSlots); report rather than
    // spin forever.
    t.syscall_status = Status::kBusy;
    t.syscall_sequence = 0;
    t.syscall_length = 0;
    t.syscall_retries = t.pending_retries;
    t.pending_op = PendingOpKind::kNone;
    t.pending_read_buffer = {};
    t.resume_pending = true;
    return;
  }
  // Re-snapshot the (new) latest slot and copy again.
  EM_ASSERT(smsg->latest_slot >= 0);
  t.pending_slot = smsg->latest_slot;
  t.pending_seq = smsg->slot_seq[smsg->latest_slot];
  t.remaining_compute =
      cost_.statemsg_fixed + CopyCost(std::min(t.pending_read_buffer.size(), smsg->size));
  if (!t.remaining_compute.is_positive()) {
    FinishStateRead(t);  // zero-cost model: recurse once; bounded by retries
  }
}

}  // namespace emeralds
