// Kernel construction, object creation, the executive, timers, and the
// scheduling-related system calls. Semaphores, condition variables, IPC, and
// interrupts live in their own translation units.

#include "src/core/kernel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/base/log.h"

namespace emeralds {
namespace {

void CopyName(char* dest, size_t dest_size, const char* src) {
  std::snprintf(dest, dest_size, "%s", src != nullptr ? src : "");
}

}  // namespace

Kernel::Kernel(Hardware& hw, const KernelConfig& config)
    : hw_(hw),
      config_(config),
      cost_(config.cost_model),
      trace_(config.trace_capacity),
      soft_timers_(config.timer_queue) {
  EM_ASSERT_MSG(config_.num_cores >= 1 && config_.num_cores <= kMaxCores,
                "num_cores %d outside [1, %d]", config_.num_cores, kMaxCores);
  cores_.reserve(static_cast<size_t>(config_.num_cores));
  for (int c = 0; c < config_.num_cores; ++c) {
    cores_.push_back(std::make_unique<CoreState>(config_.scheduler));
  }
  stats_.num_cores = config_.num_cores;
  processes_.reserve(config_.max_processes);
  threads_.reserve(config_.max_threads);
  semaphores_.reserve(config_.max_semaphores);
  condvars_.reserve(config_.max_condvars);
  mailboxes_.reserve(config_.max_mailboxes);
  smsgs_.reserve(config_.max_state_messages);
  regions_.reserve(config_.max_regions);

  Result<ProcessId> kernel_process = CreateProcess("kernel");
  EM_ASSERT(kernel_process.ok() && kernel_process.value() == kKernelProcess);

  static_assert(kMaxBands == kMaxStatBands,
                "per-band cycle table must cover every CSD band");
  static_assert(kMaxCores == kMaxStatCores,
                "per-core cycle ledgers must cover every core");
  stats_.cycles_epoch = hw_.now();

  hw_.irq().Attach(kIrqTimer, &Kernel::IrqTrampoline, this);
}

Kernel::~Kernel() {
  // Unwind intrusive structures before the pools are destroyed.
  soft_timers_.Clear();
  hw_.DisarmTimer(oneshot_);
  for (int line = 0; line < kNumIrqLines; ++line) {
    if (line == kIrqTimer || irq_threads_[line] != nullptr) {
      hw_.irq().Detach(line);
    }
  }
  for (auto& sem : semaphores_) {
    sem->waiters.clear();
    sem->pre_acquire.clear();
  }
  for (auto& cv : condvars_) {
    cv->waiters.clear();
  }
  for (auto& mbox : mailboxes_) {
    mbox->recv_waiters.clear();
    mbox->send_waiters.clear();
  }
  for (auto& t : threads_) {
    if (t->boosted_into_band >= 0) {
      sched_of(*t).RemoveBoost(*t);
    }
  }
  for (auto& t : threads_) {
    // kNew threads were never handed to the scheduler (Start() not reached);
    // kFinished threads were removed at exit.
    if (t->state != ThreadState::kFinished && t->state != ThreadState::kNew) {
      sched_of(*t).RemoveThread(*t);
    }
    if (t->coroutine) {
      t->coroutine.destroy();
    }
  }
}

// --- Object creation ---

Result<ProcessId> Kernel::CreateProcess(const char* name) {
  if (processes_.size() >= config_.max_processes) {
    return Status::kResourceExhausted;
  }
  auto process = std::make_unique<Process>();
  process->id = ProcessId(static_cast<int>(processes_.size()));
  CopyName(process->name, sizeof(process->name), name);
  ProcessId id = process->id;
  processes_.push_back(std::move(process));
  return id;
}

Result<ThreadId> Kernel::CreateThread(const ThreadParams& params) {
  EM_ASSERT_MSG(!started_, "threads must be created before Start()");
  if (threads_.size() >= config_.max_threads) {
    return Status::kResourceExhausted;
  }
  if (!params.body) {
    return Status::kInvalidArgument;
  }
  if (!params.process.valid() ||
      static_cast<size_t>(params.process.value) >= processes_.size()) {
    return Status::kBadHandle;
  }
  if (params.period.is_negative() || params.relative_deadline.is_negative() ||
      params.first_release.is_negative()) {
    return Status::kInvalidArgument;
  }
  if (params.core < 0 || params.core >= config_.num_cores) {
    return Status::kInvalidArgument;
  }
  auto tcb = std::make_unique<Tcb>();
  tcb->id = ThreadId(static_cast<int>(threads_.size()));
  tcb->process = params.process;
  CopyName(tcb->name, sizeof(tcb->name), params.name);
  tcb->period = params.period;
  tcb->periodic = params.period.is_positive();
  tcb->relative_deadline =
      params.relative_deadline.is_positive() ? params.relative_deadline : params.period;
  tcb->first_release_offset = params.first_release;
  tcb->base_band = params.band;
  tcb->base_rm_rank = params.rm_rank;
  tcb->core = params.core;
  tcb->wcet = params.wcet;
  tcb->period_timer.kind = TimerKind::kPeriodRelease;
  tcb->period_timer.owner = tcb.get();
  tcb->timeout_timer.kind = TimerKind::kTimeout;
  tcb->timeout_timer.owner = tcb.get();

  // Invoke the TCB's own copy of the factory: the coroutine references the
  // closure object, which must stay alive as long as the thread.
  tcb->body_factory = params.body;
  ThreadBody body = tcb->body_factory(ThreadApi(this, tcb.get()));
  tcb->coroutine = body.release();
  EM_ASSERT_MSG(static_cast<bool>(tcb->coroutine), "thread body factory returned no coroutine");

  ThreadId id = tcb->id;
  threads_.push_back(std::move(tcb));
  return id;
}

Result<SemId> Kernel::CreateSemaphore(const char* name, int initial_count, AccessPolicy access) {
  return CreateSemaphoreWithMode(name, initial_count, config_.default_sem_mode, access);
}

Result<SemId> Kernel::CreateSemaphoreWithMode(const char* name, int initial_count, SemMode mode,
                                              AccessPolicy access) {
  if (semaphores_.size() >= config_.max_semaphores) {
    return Status::kResourceExhausted;
  }
  if (initial_count < 0) {
    return Status::kInvalidArgument;
  }
  auto sem = std::make_unique<Semaphore>();
  sem->id = SemId(static_cast<int>(semaphores_.size()));
  CopyName(sem->name, sizeof(sem->name), name);
  sem->mode = mode;
  sem->initial_count = initial_count;
  sem->count = initial_count;
  sem->binary = initial_count == 1;
  sem->access = access;
  SemId id = sem->id;
  semaphores_.push_back(std::move(sem));
  return id;
}

Result<CondvarId> Kernel::CreateCondvar(const char* name, AccessPolicy access) {
  if (condvars_.size() >= config_.max_condvars) {
    return Status::kResourceExhausted;
  }
  auto cv = std::make_unique<Condvar>();
  cv->id = CondvarId(static_cast<int>(condvars_.size()));
  CopyName(cv->name, sizeof(cv->name), name);
  cv->access = access;
  CondvarId id = cv->id;
  condvars_.push_back(std::move(cv));
  return id;
}

Result<MailboxId> Kernel::CreateMailbox(const char* name, size_t depth, AccessPolicy access) {
  if (mailboxes_.size() >= config_.max_mailboxes) {
    return Status::kResourceExhausted;
  }
  if (depth == 0) {
    return Status::kInvalidArgument;
  }
  auto mbox = std::make_unique<Mailbox>();
  mbox->id = MailboxId(static_cast<int>(mailboxes_.size()));
  CopyName(mbox->name, sizeof(mbox->name), name);
  mbox->queue = std::make_unique<RingBuffer<MboxMessage>>(depth);
  mbox->access = access;
  MailboxId id = mbox->id;
  mailboxes_.push_back(std::move(mbox));
  return id;
}

Result<SmsgId> Kernel::CreateStateMessage(const char* name, size_t size_bytes, int num_slots,
                                          AccessPolicy access) {
  if (smsgs_.size() >= config_.max_state_messages) {
    return Status::kResourceExhausted;
  }
  if (size_bytes == 0 || num_slots < 1) {
    return Status::kInvalidArgument;
  }
  auto smsg = std::make_unique<StateMessageBuffer>();
  smsg->id = SmsgId(static_cast<int>(smsgs_.size()));
  CopyName(smsg->name, sizeof(smsg->name), name);
  smsg->size = size_bytes;
  smsg->num_slots = num_slots;
  smsg->data = std::make_unique<uint8_t[]>(size_bytes * static_cast<size_t>(num_slots));
  smsg->slot_seq = std::make_unique<uint64_t[]>(static_cast<size_t>(num_slots));
  smsg->slot_token = std::make_unique<CausalToken[]>(static_cast<size_t>(num_slots));
  for (int i = 0; i < num_slots; ++i) {
    smsg->slot_seq[i] = 0;
  }
  smsg->access = access;
  SmsgId id = smsg->id;
  smsgs_.push_back(std::move(smsg));
  return id;
}

Result<RegionId> Kernel::CreateRegion(const char* name, size_t size_bytes) {
  if (regions_.size() >= config_.max_regions || regions_.size() >= 64) {
    return Status::kResourceExhausted;
  }
  if (size_bytes == 0) {
    return Status::kInvalidArgument;
  }
  auto region = std::make_unique<SharedRegion>();
  region->id = RegionId(static_cast<int>(regions_.size()));
  CopyName(region->name, sizeof(region->name), name);
  region->size = size_bytes;
  region->data = std::make_unique<uint8_t[]>(size_bytes);
  std::memset(region->data.get(), 0, size_bytes);
  RegionId id = region->id;
  regions_.push_back(std::move(region));
  return id;
}

Status Kernel::MapRegion(ProcessId process, RegionId region, bool read, bool write) {
  if (!process.valid() || static_cast<size_t>(process.value) >= processes_.size()) {
    return Status::kBadHandle;
  }
  if (!region.valid() || static_cast<size_t>(region.value) >= regions_.size()) {
    return Status::kBadHandle;
  }
  uint64_t bit = 1ull << region.value;
  Process& p = *processes_[process.value];
  if (read || write) {
    p.map_read |= bit;
  } else {
    p.map_read &= ~bit;
  }
  if (write) {
    p.map_write |= bit;
  } else {
    p.map_write &= ~bit;
  }
  return Status::kOk;
}

Result<TimerId> Kernel::CreateTimer(const char* name, SemId signal_target) {
  Semaphore* sem = SemPtr(signal_target);
  if (sem == nullptr) {
    return Status::kBadHandle;
  }
  if (sem->binary) {
    return Status::kInvalidArgument;  // timers need a counting semaphore
  }
  auto timer = std::make_unique<UserTimer>();
  timer->id = TimerId(static_cast<int>(user_timers_.size()));
  CopyName(timer->name, sizeof(timer->name), name);
  timer->signal_target = signal_target;
  timer->soft.kind = TimerKind::kUserTimer;
  timer->soft.user = timer.get();
  TimerId id = timer->id;
  user_timers_.push_back(std::move(timer));
  return id;
}

Status Kernel::StartTimer(TimerId id, Duration initial_delay, Duration period) {
  if (!id.valid() || static_cast<size_t>(id.value) >= user_timers_.size()) {
    return Status::kBadHandle;
  }
  if (initial_delay.is_negative() || period.is_negative()) {
    return Status::kInvalidArgument;
  }
  UserTimer& timer = *user_timers_[id.value];
  timer.period = period;
  ArmSoftTimer(timer.soft, hw_.now() + initial_delay);
  return Status::kOk;
}

Status Kernel::StopTimer(TimerId id) {
  if (!id.valid() || static_cast<size_t>(id.value) >= user_timers_.size()) {
    return Status::kBadHandle;
  }
  CancelSoftTimer(user_timers_[id.value]->soft);
  return Status::kOk;
}

const UserTimer& Kernel::user_timer(TimerId id) const {
  EM_ASSERT(id.valid() && static_cast<size_t>(id.value) < user_timers_.size());
  return *user_timers_[id.value];
}

void Kernel::HandleUserTimer(UserTimer& timer) {
  ++timer.fires;
  if (timer.period.is_positive()) {
    ArmSoftTimer(timer.soft, timer.soft.expiry + timer.period);
  }
  Semaphore* sem = SemPtr(timer.signal_target);
  EM_ASSERT(sem != nullptr);
  SignalCountingSem(*sem, &timer.overruns);
}

void Kernel::SignalCountingSem(Semaphore& sem, uint64_t* overruns) {
  EM_ASSERT(!sem.binary);
  Charge(ChargeCategory::kSemaphore, cost_.sem_fixed);
  // Timer expiries are chain origins ("timer release" producing op): the
  // signal runs in ISR context, so the emit always mints a fresh token.
  int32_t endpoint = ChainEndpointPack(ChainEndpointKind::kSem, sem.id.value);
  CausalToken token = ChainEmit(endpoint, nullptr);
  int visits = 0;
  Tcb* waiter = HighestWaiter(sem, &visits);
  Charge(ChargeCategory::kSemaphore, cost_.waitq_visit * visits);
  if (waiter != nullptr) {
    sem.waiters.erase(*waiter);
    waiter->blocked_on = nullptr;
    waiter->syscall_status = Status::kOk;
    ++sem.handoffs;
    ++stats_.sem_handoffs;
    // As in SysRelease: the handoff is where the blocked acquire completes,
    // and the trace analyzer pairs it with the kSemAcquireBlock.
    trace_.Record(hw_.now(), TraceEventType::kSemAcquire, waiter->id.value, sem.id.value);
    ChainConsume(endpoint, token, *waiter);
    MakeReady(*waiter);
    return;
  }
  sem.token = token;
  if (sem.count > 0 && overruns != nullptr) {
    ++*overruns;  // the previous expiry was never consumed
  }
  if (sem.count < (1 << 30)) {
    ++sem.count;
  }
}

// --- Causal chain tracing ---

CausalToken Kernel::ChainEmit(int32_t endpoint, const Tcb* carrier) {
  CausalToken token;
  if (carrier != nullptr && carrier->chain_token.valid()) {
    token = carrier->chain_token;
  } else {
    token.origin = next_chain_origin_++;
    if (next_chain_origin_ == 0) {
      next_chain_origin_ = 1;  // 0 stays the invalid token after wraparound
    }
    token.hop = 0;
    token.mint = hw_.now();
    ++stats_.chain_origins;
  }
  ++stats_.chain_emits;
  trace_.Record(hw_.now(), TraceEventType::kChainEmit, static_cast<int32_t>(token.origin),
                endpoint,
                ChainHopPack(token.hop, carrier != nullptr ? carrier->id.value : -1));
  return token;
}

void Kernel::ChainConsume(int32_t endpoint, CausalToken token, Tcb& consumer) {
  if (!token.valid()) {
    return;
  }
  if (token.hop >= kMaxChainHops) {
    // Cyclic pipeline: stop the token instead of growing the hop count
    // without bound. The consumer starts token-free; the analyzer counts the
    // dropped token as a saturated hop, never a conservation violation.
    ++stats_.chain_hop_saturations;
    consumer.chain_token.clear();
    return;
  }
  token.hop = static_cast<uint16_t>(token.hop + 1);
  ++stats_.chain_consumes;
  trace_.Record(hw_.now(), TraceEventType::kChainConsume, static_cast<int32_t>(token.origin),
                endpoint, ChainHopPack(token.hop, consumer.id.value));
  consumer.chain_token = token;
  // Streaming chain e2e: a consume landing on the final stage of a resolved
  // chain spec closes one chain instance — record final-consume minus mint,
  // and count an overrun when it blew the chain's deadline. The offline
  // analyzer remains the reconciliation oracle; this is the always-on view.
  for (const ResolvedChain& chain : resolved_chains_) {
    if (!chain.resolved || chain.stages.empty()) {
      continue;
    }
    const ResolvedChainStage& last = chain.stages.back();
    if (last.endpoint != endpoint ||
        (last.consumer_tid >= 0 && last.consumer_tid != consumer.id.value)) {
      continue;
    }
    Duration e2e = hw_.now() - token.mint;
    stats_.chain_e2e_hist.Add(e2e);
    if (chain.deadline.is_positive() && e2e > chain.deadline) {
      ++stats_.chain_e2e_overruns;
    }
  }
}

void Kernel::ResolveChainSpecs() {
  resolved_chains_.clear();
  resolved_chains_.reserve(config_.chains.size());
  auto find_thread = [this](const std::string& name) -> int {
    for (const auto& t : threads_) {
      if (name == t->name) {
        return t->id.value;
      }
    }
    return -1;
  };
  auto resolve_channel = [&](const std::string& channel, int32_t* endpoint) -> bool {
    size_t colon = channel.find(':');
    if (colon == std::string::npos) {
      return false;
    }
    std::string kind = channel.substr(0, colon);
    std::string rest = channel.substr(colon + 1);
    if (kind == "irq") {
      char* end = nullptr;
      long line = std::strtol(rest.c_str(), &end, 10);
      if (end == rest.c_str() || *end != '\0' || line < 0 || line >= kNumIrqLines) {
        return false;
      }
      *endpoint = ChainEndpointPack(ChainEndpointKind::kIrq, static_cast<int>(line));
      return true;
    }
    if (kind == "release") {
      int tid = find_thread(rest);
      if (tid < 0) {
        return false;
      }
      *endpoint = ChainEndpointPack(ChainEndpointKind::kRelease, tid);
      return true;
    }
    if (kind == "sem") {
      for (const auto& s : semaphores_) {
        if (rest == s->name) {
          *endpoint = ChainEndpointPack(ChainEndpointKind::kSem, s->id.value);
          return true;
        }
      }
      return false;
    }
    if (kind == "cv") {
      for (const auto& c : condvars_) {
        if (rest == c->name) {
          *endpoint = ChainEndpointPack(ChainEndpointKind::kCondvar, c->id.value);
          return true;
        }
      }
      return false;
    }
    if (kind == "mbox") {
      for (const auto& m : mailboxes_) {
        if (rest == m->name) {
          *endpoint = ChainEndpointPack(ChainEndpointKind::kMailbox, m->id.value);
          return true;
        }
      }
      return false;
    }
    if (kind == "smsg") {
      for (const auto& s : smsgs_) {
        if (rest == s->name) {
          *endpoint = ChainEndpointPack(ChainEndpointKind::kSmsg, s->id.value);
          return true;
        }
      }
      return false;
    }
    return false;
  };
  for (const ChainSpec& spec : config_.chains) {
    ResolvedChain resolved;
    resolved.name = spec.name;
    resolved.deadline = spec.deadline;
    resolved.resolved = !spec.stages.empty();
    for (const ChainStageSpec& stage : spec.stages) {
      ResolvedChainStage out;
      if (!resolve_channel(stage.channel, &out.endpoint)) {
        resolved.resolved = false;
      }
      if (!stage.task.empty()) {
        out.consumer_tid = find_thread(stage.task);
        if (out.consumer_tid < 0) {
          resolved.resolved = false;
        }
      }
      resolved.stages.push_back(out);
    }
    resolved_chains_.push_back(std::move(resolved));
  }
}

void Kernel::EnableStatsSampling(Duration period, size_t capacity) {
  EM_ASSERT_MSG(!started_, "EnableStatsSampling after Start()");
  EM_ASSERT_MSG(period.is_positive(), "stats sampling period must be positive");
  stats_sample_period_ = period;
  stats_sampler_ = std::make_unique<StatsSampler>(capacity);
  stats_sample_timer_.kind = TimerKind::kStatsSample;
}

// --- Start / rank assignment ---

void Kernel::Start() {
  EM_ASSERT_MSG(!started_, "Start() called twice");
  started_ = true;
  ResolveChainSpecs();

  // Rate-monotonic rank assignment: either every thread carries an explicit
  // rank (produced by the analysis tooling) or none does and the kernel ranks
  // by period, shortest first (ties by creation order).
  size_t explicit_ranks = 0;
  for (const auto& t : threads_) {
    if (t->base_rm_rank >= 0) {
      ++explicit_ranks;
    }
  }
  EM_ASSERT_MSG(explicit_ranks == 0 || explicit_ranks == threads_.size(),
                "either all threads or no threads may carry explicit rm_rank");
  if (explicit_ranks == 0) {
    std::vector<Tcb*> order;
    order.reserve(threads_.size());
    for (auto& t : threads_) {
      order.push_back(t.get());
    }
    bool by_deadline = config_.fp_rank_policy == FpRankPolicy::kDeadlineMonotonic;
    std::stable_sort(order.begin(), order.end(), [by_deadline](const Tcb* a, const Tcb* b) {
      auto key = [by_deadline](const Tcb* t) {
        if (!t->periodic) {
          return Duration::FromNanos(INT64_MAX);
        }
        return by_deadline ? t->relative_deadline : t->period;
      };
      return key(a) < key(b);
    });
    for (size_t i = 0; i < order.size(); ++i) {
      order[i]->base_rm_rank = static_cast<int>(i);
    }
  }

  Instant start = hw_.now();
  for (auto& owned : threads_) {
    Tcb& t = *owned;
    t.effective_rm_rank = t.base_rm_rank;
    sched_of(t).AddThread(t);
    if (t.periodic) {
      t.state = ThreadState::kBlocked;
      t.block_reason = BlockReason::kWaitPeriod;
      ArmSoftTimer(t.period_timer, start + t.first_release_offset);
    } else {
      // Aperiodic threads are released immediately (boot-time, uncharged).
      t.job_deadline = Instant::Max();
      t.effective_deadline = Instant::Max();
      t.state = ThreadState::kBlocked;
      ChargeList charges;
      sched_of(t).Unblock(t, charges);
      t.state = ThreadState::kReady;
      t.resume_pending = true;
    }
  }
  if (stats_sampler_ != nullptr) {
    ArmSoftTimer(stats_sample_timer_, start + stats_sample_period_);
  }
  for (auto& cs : cores_) {
    cs->need_resched = true;
  }
}

// --- Executive ---

void Kernel::RunUntil(Instant end) {
  EM_ASSERT_MSG(started_, "RunUntil before Start()");
  for (;;) {
    DispatchDueWork();
    if (ServiceDrains()) {
      continue;  // a drained compute may unblock more work
    }
    bool rescheduled = false;
    for (int c = 0; c < config_.num_cores; ++c) {
      if (cores_[c]->need_resched) {
        Reschedule(c);
        rescheduled = true;
      }
    }
    if (rescheduled) {
      continue;  // charges may have made hardware work due
    }
    // Classify every core: the lowest core whose current thread finished its
    // compute gets resumed first (deterministic order); otherwise all
    // mid-compute cores advance together to the nearest compute horizon.
    // A core whose current thread was blocked cross-core (state != kRunning)
    // counts as idle until its pending reschedule runs.
    Tcb* to_resume = nullptr;
    bool any_compute = false;
    Instant horizon = Instant::Max();
    for (int c = 0; c < config_.num_cores; ++c) {
      Tcb* t = cores_[c]->current;
      if (t == nullptr || t->state != ThreadState::kRunning) {
        continue;
      }
      if (t->remaining_compute.is_positive()) {
        any_compute = true;
        horizon = std::min(horizon, hw_.now() + t->remaining_compute);
      } else if (to_resume == nullptr) {
        to_resume = t;
      }
    }
    if (to_resume != nullptr) {
      if (hw_.now() >= end) {
        return;  // thread code at exactly `end` runs on the next RunUntil
      }
      ResumeThread(*to_resume);
      continue;
    }
    if (!any_compute) {
      Instant next = hw_.NextTimerExpiry();
      Instant target = std::min(next, end);
      if (target > hw_.now()) {
        AdvanceIdleTo(target);
      }
      if (next <= end) {
        continue;
      }
      return;  // idle through `end`
    }
    Instant target = std::min(horizon, std::min(hw_.NextTimerExpiry(), end));
    if (target > hw_.now()) {
      AdvanceWorld(target - hw_.now());
    }
    if (ServiceDrains()) {
      continue;
    }
    if (hw_.now() >= end) {
      return;  // mid-compute at the horizon
    }
  }
}

void Kernel::DispatchDueWork() {
  for (;;) {
    int fired = hw_.FireDueTimers();
    int dispatched = hw_.irq().AnyDeliverable() ? hw_.irq().DispatchPending() : 0;
    if (fired == 0 && dispatched == 0) {
      return;
    }
  }
}

void Kernel::Reschedule(int core) {
  CoreState& cs = *cores_[core];
  ScopedActiveCore active(*this, core);
  cs.need_resched = false;
  bool sem_attr = cs.resched_from_sem;
  cs.resched_from_sem = false;
  ScopedSemPath path_guard(*this);
  sem_path_ = sem_attr;  // scope restores the previous value on exit

  ChargeList charges;
  int parsed = 0;
  Tcb* next = cs.sched.Select(charges, &parsed);
  ++stats_.selections;
  ChargeQueueOps(charges);
  if (cs.sched.num_bands() > 1) {
    Charge(ChargeCategory::kScheduling, cost_.csd_queue_parse * parsed);
  }
  if (next != cs.current) {
    ContextSwitch(core, next);
  } else if (next != nullptr && next->state == ThreadState::kReady) {
    // The current thread blocked and was rewoken within one dispatch window
    // (e.g. WaitNextPeriod at an instant its release timer was already due
    // but not yet dispatched: charges advance time without dispatching).
    // Selecting it again means no context switch ever happened; restore
    // kRunning without charging for a switch. This holds per band set: Select
    // compares TCB identity, so a thread rewoken into a *different* band
    // (PI boost, new deadline) than the one it blocked from still restores
    // kRunning here — band membership never leaves it stranded kReady.
    next->state = ThreadState::kRunning;
  }
  if (config_.debug_validate) {
    cs.sched.Validate();
  }
}

void Kernel::ContextSwitch(int core, Tcb* next) {
  CoreState& cs = *cores_[core];
  Charge(ChargeCategory::kContextSwitch, cost_.context_switch);
  ++stats_.context_switches;
  trace_.Record(hw_.now(), TraceEventType::kContextSwitch,
                cs.current != nullptr ? cs.current->id.value : -1,
                next != nullptr ? next->id.value : -1, core);
  if (cs.current != nullptr && cs.current->state == ThreadState::kRunning) {
    cs.current->state = ThreadState::kReady;
  }
  cs.current = next;
  if (next != nullptr) {
    next->state = ThreadState::kRunning;
  }
}

void Kernel::ResumeThread(Tcb& t) {
  ScopedActiveCore active(*this, t.core);
  EM_ASSERT(&t == cores_[t.core]->current && t.state == ThreadState::kRunning);
  EM_ASSERT(t.remaining_compute.is_zero());
  Watchdog();
  t.resume_pending = false;
  t.started = true;
  t.coroutine.resume();
  if (t.coroutine.done()) {
    ExitThread(t);
  }
}

void Kernel::FinishComputeDrain(Tcb& t) {
  switch (t.pending_op) {
    case PendingOpKind::kNone:
      t.resume_pending = true;
      return;
    case PendingOpKind::kStateWriteCommit:
      FinishStateWrite(t);
      return;
    case PendingOpKind::kStateReadValidate:
      FinishStateRead(t);
      return;
  }
}

bool Kernel::ServiceDrains() {
  bool serviced = false;
  for (int c = 0; c < config_.num_cores; ++c) {
    CoreState& cs = *cores_[c];
    if (!cs.drain_pending) {
      continue;
    }
    cs.drain_pending = false;
    Tcb* t = cs.current;
    if (t != nullptr && t->remaining_compute.is_zero()) {
      ScopedActiveCore active(*this, c);
      FinishComputeDrain(*t);
      serviced = true;
    }
  }
  return serviced;
}

void Kernel::AdvanceWorld(Duration amount) {
  EM_ASSERT(amount.is_positive());
  bool any_user = false;
  for (int c = 0; c < config_.num_cores; ++c) {
    CoreState& cs = *cores_[c];
    Tcb* t = cs.current;
    if (t != nullptr && t->state == ThreadState::kRunning &&
        t->remaining_compute.is_positive()) {
      EM_ASSERT(amount <= t->remaining_compute);
      t->remaining_compute -= amount;
      t->cpu_time += amount;
      t->cycles.Add(CycleBucket::kUser, amount);
      stats_.compute_time += amount;
      stats_.cycles.Add(CycleBucket::kUser, amount);
      stats_.core_cycles[c].Add(CycleBucket::kUser, amount);
      any_user = true;
      if (t->remaining_compute.is_zero()) {
        cs.drain_pending = true;
      }
    } else {
      stats_.idle_time += amount;
      stats_.cycles.Add(CycleBucket::kIdle, amount);
      stats_.core_cycles[c].Add(CycleBucket::kIdle, amount);
    }
  }
  hw_.clock().AdvanceBy(amount, any_user ? CycleBucket::kUser : CycleBucket::kIdle);
}

void Kernel::MirrorAdvance(Duration amount) {
  for (int c = 0; c < config_.num_cores; ++c) {
    if (c == active_core_) {
      continue;
    }
    CoreState& cs = *cores_[c];
    Tcb* t = cs.current;
    Duration overlap;
    if (t != nullptr && t->state == ThreadState::kRunning &&
        t->remaining_compute.is_positive()) {
      overlap = std::min(amount, t->remaining_compute);
      t->remaining_compute -= overlap;
      t->cpu_time += overlap;
      t->cycles.Add(CycleBucket::kUser, overlap);
      stats_.compute_time += overlap;
      stats_.cycles.Add(CycleBucket::kUser, overlap);
      stats_.core_cycles[c].Add(CycleBucket::kUser, overlap);
      if (t->remaining_compute.is_zero()) {
        // Never finish the drain inline: MirrorAdvance runs under a charge
        // mid-syscall (FinishState{Write,Read} recursion hazard); the
        // executive services the flag at a safe point.
        cs.drain_pending = true;
      }
    }
    Duration idle = amount - overlap;
    if (idle.is_positive()) {
      stats_.idle_time += idle;
      stats_.cycles.Add(CycleBucket::kIdle, idle);
      stats_.core_cycles[c].Add(CycleBucket::kIdle, idle);
    }
  }
}

void Kernel::AdvanceIdleTo(Instant target) {
  Duration idle = target - hw_.now();
  for (int c = 0; c < config_.num_cores; ++c) {
    stats_.idle_time += idle;
    stats_.cycles.Add(CycleBucket::kIdle, idle);
    stats_.core_cycles[c].Add(CycleBucket::kIdle, idle);
  }
  hw_.clock().AdvanceTo(target, CycleBucket::kIdle);
}

void Kernel::NotifyCore(int core, bool from_sem) {
  CoreState& cs = *cores_[core];
  cs.need_resched = true;
  cs.resched_from_sem = cs.resched_from_sem || from_sem;
  if (core != active_core_) {
    // Cross-core wake: the active core pays for posting a virtual IPI (the
    // target core's entry/exit is folded into the same constant).
    ++stats_.ipis;
    ChargeBucket(ChargeCategory::kInterrupt, CycleBucket::kIpi, cost_.ipi);
  }
}

void Kernel::Watchdog() {
  if (hw_.now() != watchdog_time_) {
    watchdog_time_ = hw_.now();
    watchdog_resumes_ = 0;
    return;
  }
  if (++watchdog_resumes_ > 1000000) {
    Tcb* cur = cores_[active_core_]->current;
    EM_PANIC("executive livelock: thread %d resumed 1M times at t=%lld ns without progress",
             cur != nullptr ? cur->id.value : -1,
             static_cast<long long>(hw_.now().nanos()));
  }
}

// --- Charging ---

void Kernel::Charge(ChargeCategory category, Duration amount) {
  ChargeBucket(category, DefaultCycleBucket(category), amount);
}

void Kernel::ChargeBucket(ChargeCategory category, CycleBucket bucket, Duration amount) {
  if (!amount.is_positive()) {
    return;
  }
  hw_.clock().AdvanceBy(amount, bucket);
  stats_.charged[static_cast<int>(category)] += amount;
  stats_.cycles.Add(bucket, amount);
  stats_.core_cycles[active_core_].Add(bucket, amount);
  Tcb* cur = cores_[active_core_]->current;
  if (cur != nullptr) {
    // Kernel work is billed to the thread that triggered it (the running
    // thread — interference from ISRs included, as on real hardware).
    cur->cycles.Add(bucket, amount);
  }
  if (sem_path_) {
    stats_.sem_path_time += amount;
  }
  if (config_.num_cores > 1) {
    // While this core does kernel work, the other cores keep running.
    MirrorAdvance(amount);
  }
  if (config_.trace_overhead_spans) {
    // Span event at the *end* of the advance: [now - amount, now] on this
    // core was `bucket` work. The postmortem engine subtracts these spans
    // from inter-event gaps to attribute kernel overhead exactly.
    int64_t ns = amount.nanos();
    trace_.Record(hw_.now(), TraceEventType::kOverheadSpan,
                  OverheadSpanPack(static_cast<int>(bucket), active_core_),
                  ns > INT32_MAX ? INT32_MAX : static_cast<int32_t>(ns),
                  cur != nullptr ? cur->id.value + 1 : 0);
  }
}

void Kernel::ChargeQueueOps(const ChargeList& charges) {
  for (const QueueCharge& qc : charges) {
    Duration amount = cost_.QueueCost(qc.kind, qc.op, qc.units);
    ChargeBucket(ChargeCategory::kScheduling, CycleBucketForQueueOp(qc.op), amount);
    if (qc.band >= 0 && qc.band < kMaxStatBands) {
      stats_.sched_band_cycles[qc.band][static_cast<int>(qc.op)] += amount;
    }
    ++stats_.queue_op_count[static_cast<int>(qc.kind)][static_cast<int>(qc.op)];
    stats_.queue_op_units[static_cast<int>(qc.kind)][static_cast<int>(qc.op)] +=
        static_cast<uint64_t>(qc.units);
  }
}

// --- Thread state transitions ---

void Kernel::BlockThread(Tcb& t, BlockReason reason) {
  EM_ASSERT_MSG(t.runnable(), "blocking a non-runnable thread");
  if (t.preacq_sem != nullptr && reason != BlockReason::kPreAcquire) {
    // The thread blocked on something other than the hinted acquire: the
    // parser hint was wrong (or the code path diverged). Tolerate and count.
    ++stats_.cse_hint_misses;
    LeavePreAcquire(t);
  }
  ChargeList charges;
  sched_of(t).Block(t, charges);
  ChargeQueueOps(charges);
  t.state = ThreadState::kBlocked;
  t.block_reason = reason;
  // Blocked-interval edge for the postmortem engine. arg2 names the
  // semaphore for lock waits so lateness can be blamed per lock; other
  // reasons are self-suspension and carry -1.
  int32_t blocked_obj = -1;
  if (reason == BlockReason::kWaitSem && t.blocked_on != nullptr) {
    blocked_obj = t.blocked_on->id.value;
  } else if (reason == BlockReason::kPreAcquire && t.preacq_sem != nullptr) {
    blocked_obj = t.preacq_sem->id.value;
  }
  trace_.Record(hw_.now(), TraceEventType::kThreadBlock, t.id.value,
                static_cast<int32_t>(reason), blocked_obj);
  if (&t == cores_[t.core]->current) {
    NotifyCore(t.core, sem_path_);
  }
}

void Kernel::MakeReady(Tcb& t) {
  EM_ASSERT_MSG(t.is_blocked(), "MakeReady on non-blocked thread");
  ChargeList charges;
  sched_of(t).Unblock(t, charges);
  ChargeQueueOps(charges);
  BlockReason was_blocked = t.block_reason;
  t.state = ThreadState::kReady;
  t.block_reason = BlockReason::kNone;
  trace_.Record(hw_.now(), TraceEventType::kThreadReady, t.id.value,
                static_cast<int32_t>(was_blocked), t.core);
  if (t.remaining_compute.is_zero() && t.pending_op == PendingOpKind::kNone) {
    t.resume_pending = true;
  }
  NotifyCore(t.core, sem_path_);
}

void Kernel::ExitThread(Tcb& t) {
  EM_ASSERT_MSG(t.held_head == nullptr, "thread '%s' exited while holding a semaphore", t.name);
  trace_.Record(hw_.now(), TraceEventType::kThreadExit, t.id.value, 0, t.core);
  if (t.preacq_sem != nullptr) {
    LeavePreAcquire(t);
  }
  CancelSoftTimer(t.period_timer);
  CancelSoftTimer(t.timeout_timer);
  sched_of(t).RemoveThread(t);
  t.state = ThreadState::kFinished;
  cores_[t.core]->current = nullptr;
  NotifyCore(t.core, false);
}

// --- Timers ---

void Kernel::ArmSoftTimer(SoftTimer& timer, Instant expiry) {
  if (timer.armed()) {
    soft_timers_.Remove(timer);
  }
  timer.expiry = expiry;
  timer.arm_seq = timer_seq_++;
  soft_timers_.Insert(timer, hw_.now());
  ProgramHardwareTimer();
}

void Kernel::CancelSoftTimer(SoftTimer& timer) {
  if (!timer.armed()) {
    return;
  }
  soft_timers_.Remove(timer);
  ProgramHardwareTimer();
}

void Kernel::ProgramHardwareTimer() {
  SoftTimer* first = soft_timers_.Min();
  if (first == nullptr) {
    hw_.DisarmTimer(oneshot_);
    return;
  }
  Instant when = std::max(first->expiry, hw_.now());
  hw_.ArmTimer(oneshot_, when);
}

void Kernel::TimerIsr() {
  Charge(ChargeCategory::kInterrupt, cost_.interrupt_entry);
  ++stats_.interrupts;
  for (;;) {
    SoftTimer* first = soft_timers_.Min();
    if (first == nullptr || first->expiry > hw_.now()) {
      break;
    }
    soft_timers_.Remove(*first);
    Charge(ChargeCategory::kTimerSvc, cost_.timer_dispatch);
    ++stats_.timer_dispatches;
    switch (first->kind) {
      case TimerKind::kPeriodRelease:
        HandlePeriodRelease(*first->owner);
        break;
      case TimerKind::kTimeout:
        HandleTimeout(*first->owner);
        break;
      case TimerKind::kUserTimer:
        HandleUserTimer(*first->user);
        break;
      case TimerKind::kStatsSample:
        // The sampler's own cost lands in the ledger like any other work,
        // and is charged before Sample() so it falls inside the interval it
        // closes.
        Charge(ChargeCategory::kStatsObs, cost_.stats_sample);
        if (stats_sampler_->Sample(hw_.now(), stats_)) {
          // The ring evicted an interval nobody had read — make the loss
          // visible instead of silently splicing across it. The delta was
          // taken before the bump, so the *next* interval carries the count.
          ++stats_.stats_snapshot_drops;
        }
        ArmSoftTimer(stats_sample_timer_, first->expiry + stats_sample_period_);
        break;
    }
  }
  ProgramHardwareTimer();
  Charge(ChargeCategory::kInterrupt, cost_.interrupt_exit);
  // The timer ISR runs on the boot core; wakes for other cores went through
  // NotifyCore (priced IPIs) as they happened.
  cores_[active_core_]->need_resched = true;
}

void Kernel::HandlePeriodRelease(Tcb& t) {
  // Re-arm on the period grid (the timer's expiry, not `now`, avoids drift).
  Instant this_release = t.period_timer.expiry;
  ArmSoftTimer(t.period_timer, this_release + t.period);
  if (t.state == ThreadState::kBlocked && t.block_reason == BlockReason::kWaitPeriod) {
    StartJob(t);
    WakeThread(t);
  } else {
    // Still busy with the previous job: remember the release (Section 5's
    // periodic model).
    ++t.pending_releases;
    ++stats_.jobs_released;
    // The previous job's deadline has passed without completion: record the
    // miss now rather than waiting for the (possibly distant) completion.
    if (hw_.now() > t.job_deadline && !t.miss_recorded) {
      t.miss_recorded = true;
      ++t.deadline_misses;
      ++stats_.deadline_misses;
      trace_.Record(hw_.now(), TraceEventType::kDeadlineMiss, t.id.value,
                    static_cast<int32_t>(t.job_number));
    }
  }
}

void Kernel::StartJob(Tcb& t) {
  EM_ASSERT(t.periodic);
  ++t.job_number;
  if (t.job_number == 1) {
    t.job_release = Instant() + t.first_release_offset;
  } else {
    t.job_release += t.period;
  }
  t.job_deadline = t.job_release + t.relative_deadline;
  ++stats_.jobs_released;
  // arg2 carries the relative deadline so an offline postmortem can recover
  // the absolute deadline from the release event alone: positive = ns,
  // negative = -us (for deadlines past ~2.1s), 0 = not encoded (legacy).
  int64_t rel_dl_ns = t.relative_deadline.nanos();
  int32_t dl_arg = 0;
  if (rel_dl_ns <= INT32_MAX) {
    dl_arg = static_cast<int32_t>(rel_dl_ns);
  } else if (t.relative_deadline.micros() <= INT32_MAX) {
    dl_arg = -static_cast<int32_t>(t.relative_deadline.micros());
  }
  trace_.Record(t.job_release, TraceEventType::kJobRelease, t.id.value,
                static_cast<int32_t>(t.job_number), dl_arg);
  // Each periodic release is a chain origin: mint a fresh token and hand it
  // straight to the released job (emit + consume pair at the release
  // endpoint). Recorded at the processing instant, not the nominal release —
  // chain events have no monotone-time exemption.
  t.chain_token.clear();
  int32_t release_ep = ChainEndpointPack(ChainEndpointKind::kRelease, t.id.value);
  ChainConsume(release_ep, ChainEmit(release_ep, nullptr), t);
  PredictHeadroom(t);
  t.job_cost_baseline = t.cycles.total();
  RecomputeEffective(t);
}

void Kernel::PredictHeadroom(Tcb& t) {
  if (!t.job_cost_seeded) {
    return;  // no observed cost yet — the first job seeds the EWMA
  }
  // Slack if the new job costs what jobs of this task have been costing.
  // Predicting from `now` (not the nominal release) folds in any lateness the
  // release already accumulated.
  Instant predicted = hw_.now() + t.job_cost_ewma;
  Duration slack = t.job_deadline - predicted;
  if (slack < config_.headroom_low_margin) {
    ++t.headroom_low_events;
    ++stats_.headroom_low_events;
    int64_t slack_us = slack.micros();
    if (slack_us > INT32_MAX) slack_us = INT32_MAX;
    if (slack_us < INT32_MIN) slack_us = INT32_MIN;
    trace_.Record(hw_.now(), TraceEventType::kHeadroomLow, t.id.value,
                  static_cast<int32_t>(slack_us));
  }
}

void Kernel::RecordJobCost(Tcb& t) {
  Duration job_cost = t.cycles.total() - t.job_cost_baseline;
  if (!t.job_cost_seeded) {
    t.job_cost_ewma = job_cost;
    t.job_cost_seeded = true;
  } else {
    // Integer EWMA, alpha = 1/4: cheap, monotone-stable, good enough for a
    // slack predictor.
    t.job_cost_ewma += (job_cost - t.job_cost_ewma) / 4;
  }
  Duration headroom = t.job_deadline - hw_.now();  // negative on a miss
  stats_.headroom_hist.Add(headroom);
  if (!t.headroom_seen || headroom < t.headroom_min) {
    t.headroom_min = headroom;
    t.headroom_seen = true;
  }
}

void Kernel::HandleTimeout(Tcb& t) {
  switch (t.block_reason) {
    case BlockReason::kSleep:
      WakeThread(t);
      return;
    case BlockReason::kWaitMailboxRecv: {
      Mailbox* mbox = MailboxPtr(t.waiting_mailbox);
      EM_ASSERT(mbox != nullptr);
      mbox->recv_waiters.erase(t);
      ++mbox->recv_timeouts;
      t.syscall_status = Status::kTimedOut;
      t.syscall_length = 0;
      FinishMailboxRecvWait(t);
      WakeThread(t);
      return;
    }
    default:
      EM_PANIC("timeout fired for thread '%s' in unexpected state %d", t.name,
               static_cast<int>(t.block_reason));
  }
}

// --- Scheduling syscalls ---

Kernel::SyscallOutcome Kernel::SysCompute(Tcb& t, Duration amount) {
  EM_ASSERT(&t == cores_[t.core]->current);
  if (!amount.is_positive()) {
    return {false};
  }
  t.remaining_compute = amount;
  return {true};
}

Kernel::SyscallOutcome Kernel::SysWaitPeriod(Tcb& t, SemId next_sem) {
  EM_ASSERT(&t == cores_[t.core]->current);
  ++stats_.syscalls;
  Charge(ChargeCategory::kSyscall, cost_.syscall);
  EM_ASSERT_MSG(t.periodic, "WaitNextPeriod on aperiodic thread '%s'", t.name);

  // Complete the current job.
  ++t.jobs_completed;
  ++stats_.jobs_completed;
  Duration response = hw_.now() - t.job_release;
  t.total_response += response;
  stats_.response_hist.Add(response);
  if (response > t.max_response) {
    t.max_response = response;
  }
  trace_.Record(hw_.now(), TraceEventType::kJobComplete, t.id.value,
                static_cast<int32_t>(t.job_number));
  RecordJobCost(t);
  if (hw_.now() > t.job_deadline && !t.miss_recorded) {
    ++t.deadline_misses;
    ++stats_.deadline_misses;
    trace_.Record(hw_.now(), TraceEventType::kDeadlineMiss, t.id.value,
                  static_cast<int32_t>(t.job_number));
  }
  t.miss_recorded = false;
  // The token is per-job dataflow; the next job starts token-free (StartJob
  // mints its release origin).
  t.chain_token.clear();

  t.wakeup_hint = next_sem;
  if (t.pending_releases > 0) {
    // The next release already arrived (overrun): start the new job without
    // blocking. Section 6.2.2's first concern — the context switch the CSE
    // scheme would have saved simply never existed here.
    --t.pending_releases;
    --stats_.jobs_released;  // StartJob will re-count it
    StartJob(t);
    t.wakeup_hint = kNoSem;
    if (next_sem.valid()) {
      Semaphore* sem = SemPtr(next_sem);
      EM_ASSERT(sem != nullptr);
      if (sem->mode == SemMode::kCse) {
        ScopedSemPath path(*this);
        Charge(ChargeCategory::kSemaphore, cost_.sem_cse_check);
        if (sem->owner == nullptr) {
          JoinPreAcquire(*sem, t);
        }
      }
    }
    // The new deadline may demote this thread; let the scheduler re-evaluate.
    cores_[t.core]->need_resched = true;
    t.resume_pending = true;
    return {true};
  }
  BlockThread(t, BlockReason::kWaitPeriod);
  return {true};
}

Kernel::SyscallOutcome Kernel::SysSleep(Tcb& t, Duration amount, SemId next_sem) {
  EM_ASSERT(&t == cores_[t.core]->current);
  ++stats_.syscalls;
  Charge(ChargeCategory::kSyscall, cost_.syscall);
  if (!amount.is_positive()) {
    if (need_resched()) {
      t.resume_pending = true;
      return {true};
    }
    return {false};
  }
  t.wakeup_hint = next_sem;
  ArmSoftTimer(t.timeout_timer, hw_.now() + amount);
  BlockThread(t, BlockReason::kSleep);
  return {true};
}

Kernel::SyscallOutcome Kernel::SysYield(Tcb& t) {
  EM_ASSERT(&t == cores_[t.core]->current);
  ++stats_.syscalls;
  Charge(ChargeCategory::kSyscall, cost_.syscall);
  cores_[t.core]->need_resched = true;
  t.resume_pending = true;
  return {true};
}

// The CSE unblock path (Section 6.2, Figure 8): before making a woken thread
// ready, check the semaphore it is about to acquire. If the semaphore is
// held, perform priority inheritance *now* and leave the thread blocked on
// the semaphore — eliminating context switch C2. If it is free, park the
// thread in the pre-acquire queue (Section 6.3.1).
void Kernel::WakeThread(Tcb& t) {
  EM_ASSERT(t.is_blocked());
  SemId hint = t.wakeup_hint;
  t.wakeup_hint = kNoSem;
  if (hint.valid()) {
    Semaphore* sem = SemPtr(hint);
    EM_ASSERT_MSG(sem != nullptr, "CSE hint names unknown semaphore %d", hint.value);
    if (sem->mode == SemMode::kCse) {
      ScopedSemPath path(*this);
      Charge(ChargeCategory::kSemaphore, cost_.sem_cse_check);
      if (sem->owner != nullptr && sem->owner != &t && !PiChainTooDeep(*sem)) {
        ++stats_.cse_early_pi;
        t.blocked_on = sem;
        t.block_reason = BlockReason::kWaitSem;
        t.cse_waiter = true;
        EnqueueWaiter(*sem, t);
        DoInheritance(*sem, t);
        trace_.Record(hw_.now(), TraceEventType::kSemCseEarlyPi, t.id.value, sem->id.value);
        return;  // remains blocked; woken by the holder's release
      }
      if (sem->owner == nullptr) {
        JoinPreAcquire(*sem, t);
      }
    }
  }
  MakeReady(t);
}

// --- Accessors ---

const Tcb& Kernel::thread(ThreadId id) const {
  EM_ASSERT(id.valid() && static_cast<size_t>(id.value) < threads_.size());
  return *threads_[id.value];
}

const Semaphore& Kernel::semaphore(SemId id) const {
  EM_ASSERT(id.valid() && static_cast<size_t>(id.value) < semaphores_.size());
  return *semaphores_[id.value];
}

const Mailbox& Kernel::mailbox(MailboxId id) const {
  EM_ASSERT(id.valid() && static_cast<size_t>(id.value) < mailboxes_.size());
  return *mailboxes_[id.value];
}

const StateMessageBuffer& Kernel::state_message(SmsgId id) const {
  EM_ASSERT(id.valid() && static_cast<size_t>(id.value) < smsgs_.size());
  return *smsgs_[id.value];
}

const Condvar& Kernel::condvar(CondvarId id) const {
  EM_ASSERT(id.valid() && static_cast<size_t>(id.value) < condvars_.size());
  return *condvars_[id.value];
}

std::span<uint8_t> Kernel::RegionDataFor(ProcessId process, RegionId region, bool write) {
  if (!process.valid() || static_cast<size_t>(process.value) >= processes_.size() ||
      !region.valid() || static_cast<size_t>(region.value) >= regions_.size()) {
    return {};
  }
  const Process& p = *processes_[process.value];
  uint64_t bit = 1ull << region.value;
  if ((p.map_read & bit) == 0) {
    return {};
  }
  if (write && (p.map_write & bit) == 0) {
    return {};
  }
  SharedRegion& r = *regions_[region.value];
  return std::span<uint8_t>(r.data.get(), r.size);
}

void Kernel::ResetChargeAccounting() {
  for (Duration& d : stats_.charged) {
    d = Duration();
  }
  stats_.sem_path_time = Duration();
  stats_.compute_time = Duration();
  stats_.idle_time = Duration();
  // Re-base the cycle ledger: conservation is windowed against cycles_epoch,
  // so a mid-run reset keeps the invariant exact. Per-task ledgers are
  // cumulative (like cpu_time) and are left alone.
  stats_.cycles = CycleLedger();
  for (CycleLedger& ledger : stats_.core_cycles) {
    ledger = CycleLedger();
  }
  for (auto& per_band : stats_.sched_band_cycles) {
    for (Duration& d : per_band) {
      d = Duration();
    }
  }
  stats_.cycles_epoch = hw_.now();
  if (stats_sampler_ != nullptr) {
    stats_sampler_->Rebase(stats_);
  }
}

void Kernel::DumpThreads() const {
  std::printf("%3s %-14s %-9s %4s %4s %9s %7s %7s %10s %10s\n", "id", "name", "state", "band",
              "rank", "period", "jobs", "misses", "worst-resp", "cpu");
  for (const auto& t : threads_) {
    char period[24];
    char response[24];
    char cpu[24];
    FormatDuration(t->period, period, sizeof(period));
    FormatDuration(t->max_response, response, sizeof(response));
    FormatDuration(t->cpu_time, cpu, sizeof(cpu));
    std::printf("%3d %-14s %-9s %4d %4d %9s %7llu %7llu %10s %10s\n", t->id.value, t->name,
                ThreadStateToString(t->state), t->base_band, t->base_rm_rank,
                t->periodic ? period : "-", static_cast<unsigned long long>(t->jobs_completed),
                static_cast<unsigned long long>(t->deadline_misses), response, cpu);
  }
}

}  // namespace emeralds
