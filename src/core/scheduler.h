// The CSD scheduler: an ordered list of bands (Section 5.3).
//
// CSD-x keeps x queues: dynamic-priority EDF queues first, a fixed-priority
// queue last, with strictly decreasing priority. Selection walks the queue
// list (charging the 0.55 us/queue parse cost) and stops at the first queue
// with a ready task. Pure EDF / RM / RM-heap schedulers are the one-band
// special cases, so every policy shares the same block/unblock/select
// framework that Table 1 measures.
//
// Priority inheritance may temporarily *boost* a task into a higher band
// (when a DP task waits on a semaphore held by a lower-band task); boosted
// tasks are kept on a per-band side list that selection also parses.

#ifndef SRC_CORE_SCHEDULER_H_
#define SRC_CORE_SCHEDULER_H_

#include <memory>

#include "src/base/static_vector.h"
#include "src/core/band.h"
#include "src/core/config.h"

namespace emeralds {

class Scheduler {
 public:
  explicit Scheduler(const SchedulerSpec& spec);
  ~Scheduler();

  int num_bands() const { return static_cast<int>(bands_.size()); }
  Band& band(int index) {
    EM_ASSERT(index >= 0 && index < num_bands());
    return *bands_[index];
  }
  const Band& band(int index) const {
    EM_ASSERT(index >= 0 && index < num_bands());
    return *bands_[index];
  }

  // Membership. The task's base_band selects its home queue; -1 maps to the
  // last (fixed-priority) band.
  void AddThread(Tcb& task);
  void RemoveThread(Tcb& task);

  void Block(Tcb& task, ChargeList& charges);
  void Unblock(Tcb& task, ChargeList& charges);

  // Picks the highest-priority ready task across bands. `queues_parsed`
  // counts inspected queues for the CSD parse charge.
  Tcb* Select(ChargeList& charges, int* queues_parsed);

  // --- Priority-inheritance support ---

  // Makes `task` selectable in `band` (a higher-priority band than its
  // effective one) without leaving its home queue.
  void BoostInto(Tcb& task, int band);
  // Ends a boost; restores effective_band to the task's base band.
  void RemoveBoost(Tcb& task);

  // True when the place-holder swap applies: both tasks live in the same
  // RmBand, neither is boosted, and the waiter is blocked.
  bool CanSwapFp(const Tcb& holder, const Tcb& waiter) const;
  RmBand* FpBandOf(const Tcb& task);

  // Total order used for wait queues and preemption decisions: band first,
  // then the band's key (deadline for EDF bands, rank for RM bands).
  bool HigherPriority(const Tcb& a, const Tcb& b) const;

  void Validate() const;

 private:
  StaticVector<std::unique_ptr<Band>, kMaxBands> bands_;
  IntrusiveList<Tcb, &Tcb::boost_node> boosted_[kMaxBands];
  int boosted_ready_[kMaxBands] = {};
};

}  // namespace emeralds

#endif  // SRC_CORE_SCHEDULER_H_
