#include "src/core/band.h"

namespace emeralds {
namespace {

void AppendCharge(ChargeList& charges, const Band& band, QueueOp op, int units) {
  charges.push_back(QueueCharge{band.kind(), op, units, band.index()});
}

}  // namespace

// --- EdfBand ---

EdfBand::~EdfBand() { tasks_.clear(); }

void EdfBand::AddTask(Tcb& task) {
  EM_ASSERT_MSG(!task.ready, "task must be added blocked");
  tasks_.push_back(task);
}

void EdfBand::RemoveTask(Tcb& task) {
  if (task.ready) {
    --ready_count_;
    task.ready = false;
  }
  tasks_.erase(task);
}

void EdfBand::Block(Tcb& task, ChargeList& charges) {
  EM_ASSERT(task.ready);
  task.ready = false;
  --ready_count_;
  // "A task is blocked ... by changing one entry in the task control block."
  AppendCharge(charges, *this, QueueOp::kBlock, 1);
}

void EdfBand::Unblock(Tcb& task, ChargeList& charges) {
  EM_ASSERT(!task.ready);
  task.ready = true;
  ++ready_count_;
  AppendCharge(charges, *this, QueueOp::kUnblock, 1);
}

Tcb* EdfBand::SelectReady(int* units) {
  if (ready_count_ == 0) {
    *units = 0;
    return nullptr;
  }
  // "To select the next task to execute, the list is parsed and the
  // earliest-deadline ready task is picked" — O(n) over the whole list.
  int visited = 0;
  Tcb* best = nullptr;
  for (Tcb& task : tasks_) {
    ++visited;
    if (!task.ready) {
      continue;
    }
    if (best == nullptr || task.effective_deadline < best->effective_deadline ||
        (task.effective_deadline == best->effective_deadline &&
         (task.effective_rm_rank < best->effective_rm_rank ||
          (task.effective_rm_rank == best->effective_rm_rank && task.id < best->id)))) {
      best = &task;
    }
  }
  *units = visited;
  EM_ASSERT(best != nullptr);
  return best;
}

void EdfBand::Validate() const {
  int ready = 0;
  for (const Tcb& task : const_cast<EdfBand*>(this)->tasks_) {
    if (task.ready) {
      ++ready;
    }
  }
  EM_ASSERT_MSG(ready == ready_count_, "EDF ready counter drift: %d vs %d", ready, ready_count_);
}

// --- RmBand ---

RmBand::~RmBand() { tasks_.clear(); }

void RmBand::AddTask(Tcb& task) {
  EM_ASSERT_MSG(!task.ready, "task must be added blocked");
  for (Tcb& other : tasks_) {
    if (task.effective_rm_rank < other.effective_rm_rank) {
      tasks_.insert_before(other, task);
      return;
    }
  }
  tasks_.push_back(task);
}

void RmBand::RemoveTask(Tcb& task) {
  if (highestp_ == &task) {
    task.ready = false;
    RecomputeHighestp();
  }
  task.ready = false;
  tasks_.erase(task);
}

void RmBand::Block(Tcb& task, ChargeList& charges) {
  EM_ASSERT(task.ready);
  task.ready = false;
  int visits = 0;
  if (highestp_ == &task) {
    // Scan forward for the next ready task (worst case O(n)); each inspected
    // node is one unit of the paper's 0.36 us/task blocking slope.
    Tcb* next = tasks_.next(task);
    while (next != nullptr && !next->ready) {
      ++visits;
      next = tasks_.next(*next);
    }
    if (next != nullptr) {
      ++visits;
    }
    highestp_ = next;
  }
  AppendCharge(charges, *this, QueueOp::kBlock, visits);
}

void RmBand::Unblock(Tcb& task, ChargeList& charges) {
  EM_ASSERT(!task.ready);
  task.ready = true;
  // O(1): compare against highestp and move the pointer if needed.
  if (highestp_ == nullptr || task.effective_rm_rank < highestp_->effective_rm_rank) {
    highestp_ = &task;
  }
  AppendCharge(charges, *this, QueueOp::kUnblock, 1);
}

Tcb* RmBand::SelectReady(int* units) {
  *units = highestp_ != nullptr ? 1 : 0;
  return highestp_;
}

int RmBand::Reposition(Tcb& task) { return SortedReinsert(task); }

void RmBand::SwapForPi(Tcb& holder, Tcb& waiter) {
  EM_ASSERT_MSG(!waiter.ready, "place-holder must be blocked");
  tasks_.SwapPositions(holder, waiter);
  // The modelled operation is O(1); the full highestp recomputation below is
  // a host-side convenience and is intentionally not charged (the real kernel
  // updates the pointer from locally-known neighbours during the swap).
  RecomputeHighestp();
}

int RmBand::SortedReinsert(Tcb& task) {
  bool was_ready = task.ready;
  tasks_.erase(task);
  int visits = 0;
  Tcb* insert_before = nullptr;
  for (Tcb& other : tasks_) {
    ++visits;
    if (task.effective_rm_rank < other.effective_rm_rank) {
      insert_before = &other;
      break;
    }
  }
  if (insert_before != nullptr) {
    tasks_.insert_before(*insert_before, task);
  } else {
    tasks_.push_back(task);
  }
  if (was_ready) {
    RecomputeHighestp();
  }
  return visits;
}

void RmBand::RecomputeHighestp() {
  highestp_ = nullptr;
  for (Tcb& task : tasks_) {
    if (task.ready) {
      highestp_ = &task;
      return;
    }
  }
}

void RmBand::Validate() const {
  auto& tasks = const_cast<RmBand*>(this)->tasks_;
  // Ready tasks must appear in non-decreasing rank order, and highestp must
  // be the first ready task.
  const Tcb* first_ready = nullptr;
  int last_ready_rank = INT32_MIN;
  for (const Tcb& task : tasks) {
    if (!task.ready) {
      continue;
    }
    if (first_ready == nullptr) {
      first_ready = &task;
    }
    EM_ASSERT_MSG(task.effective_rm_rank >= last_ready_rank,
                  "FP queue ready tasks out of rank order");
    last_ready_rank = task.effective_rm_rank;
  }
  EM_ASSERT_MSG(first_ready == highestp_, "highestp does not point at first ready task");
}

// --- RmHeapBand ---

RmHeapBand::~RmHeapBand() { tasks_.clear(); }

bool RmHeapBand::Less(const Tcb& a, const Tcb& b) const {
  if (a.effective_rm_rank != b.effective_rm_rank) {
    return a.effective_rm_rank < b.effective_rm_rank;
  }
  return a.id < b.id;
}

void RmHeapBand::AddTask(Tcb& task) {
  EM_ASSERT_MSG(!task.ready, "task must be added blocked");
  tasks_.push_back(task);
}

void RmHeapBand::RemoveTask(Tcb& task) {
  if (task.ready) {
    int units = 0;
    HeapRemove(task.heap_index, &units);
    task.ready = false;
  }
  tasks_.erase(task);
}

int RmHeapBand::SiftUp(size_t index) {
  int moves = 0;
  while (index > 0) {
    size_t parent = (index - 1) / 2;
    if (!Less(*heap_[index], *heap_[parent])) {
      break;
    }
    std::swap(heap_[index], heap_[parent]);
    heap_[index]->heap_index = index;
    heap_[parent]->heap_index = parent;
    index = parent;
    ++moves;
  }
  return moves;
}

int RmHeapBand::SiftDown(size_t index) {
  int moves = 0;
  while (true) {
    size_t left = 2 * index + 1;
    size_t right = left + 1;
    size_t smallest = index;
    if (left < heap_.size() && Less(*heap_[left], *heap_[smallest])) {
      smallest = left;
    }
    if (right < heap_.size() && Less(*heap_[right], *heap_[smallest])) {
      smallest = right;
    }
    if (smallest == index) {
      break;
    }
    std::swap(heap_[index], heap_[smallest]);
    heap_[index]->heap_index = index;
    heap_[smallest]->heap_index = smallest;
    index = smallest;
    ++moves;
  }
  return moves;
}

void RmHeapBand::HeapRemove(size_t index, int* units) {
  EM_ASSERT(index < heap_.size());
  Tcb* removed = heap_[index];
  Tcb* last = heap_.back();
  heap_.pop_back();
  removed->heap_index = SIZE_MAX;
  int moves = 0;
  if (last != removed) {
    heap_[index] = last;
    last->heap_index = index;
    moves = SiftUp(index);
    if (moves == 0) {
      moves = SiftDown(index);
    }
  }
  *units += moves + 1;
}

void RmHeapBand::Block(Tcb& task, ChargeList& charges) {
  EM_ASSERT(task.ready);
  task.ready = false;
  int units = 0;
  HeapRemove(task.heap_index, &units);
  AppendCharge(charges, *this, QueueOp::kBlock, units);
}

void RmHeapBand::Unblock(Tcb& task, ChargeList& charges) {
  EM_ASSERT(!task.ready);
  task.ready = true;
  heap_.push_back(&task);
  task.heap_index = heap_.size() - 1;
  int units = SiftUp(task.heap_index) + 1;
  AppendCharge(charges, *this, QueueOp::kUnblock, units);
}

Tcb* RmHeapBand::SelectReady(int* units) {
  if (heap_.empty()) {
    *units = 0;
    return nullptr;
  }
  *units = 1;
  return heap_[0];
}

int RmHeapBand::Reposition(Tcb& task) {
  EM_ASSERT(task.ready && task.heap_index != SIZE_MAX);
  int moves = SiftUp(task.heap_index);
  if (moves == 0) {
    moves = SiftDown(task.heap_index);
  }
  return moves + 1;
}

void RmHeapBand::Validate() const {
  for (size_t i = 0; i < heap_.size(); ++i) {
    EM_ASSERT_MSG(heap_[i]->heap_index == i, "heap index drift at %zu", i);
    EM_ASSERT(heap_[i]->ready);
    if (i > 0) {
      size_t parent = (i - 1) / 2;
      EM_ASSERT_MSG(!Less(*heap_[i], *heap_[parent]), "heap order violated at %zu", i);
    }
  }
  int ready = 0;
  for (const Tcb& task : const_cast<RmHeapBand*>(this)->tasks_) {
    if (task.ready) {
      ++ready;
    }
  }
  EM_ASSERT_MSG(static_cast<size_t>(ready) == heap_.size(), "heap misses ready tasks");
}

std::unique_ptr<Band> MakeBand(QueueKind kind, int index) {
  switch (kind) {
    case QueueKind::kEdfList:
      return std::make_unique<EdfBand>(index);
    case QueueKind::kRmList:
      return std::make_unique<RmBand>(index);
    case QueueKind::kRmHeap:
      return std::make_unique<RmHeapBand>(index);
  }
  EM_PANIC("unknown QueueKind");
}

}  // namespace emeralds
