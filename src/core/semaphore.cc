// Semaphores with priority inheritance (Section 6).
//
// Two operating modes coexist:
//  * SemMode::kStandard — the conventional implementation of Section 6.1:
//    contended acquire does PI (O(n) sorted re-insert for FP tasks), blocks,
//    and costs two context switches per acquire/release pair.
//  * SemMode::kCse — EMERALDS's scheme (Sections 6.2-6.3): the blocking call
//    preceding acquire_sem carries the semaphore id; the unblock path performs
//    PI early and keeps the thread blocked (saving context switch C2), FP
//    priority inheritance uses the O(1) place-holder position swap, and a
//    per-semaphore pre-acquire queue freezes would-be acquirers while the
//    lock is held by a thread that blocks (Section 6.3.1).

#include "src/core/kernel.h"

namespace emeralds {

Semaphore* Kernel::SemPtr(SemId id) {
  if (!id.valid() || static_cast<size_t>(id.value) >= semaphores_.size()) {
    return nullptr;
  }
  return semaphores_[id.value].get();
}

void Kernel::HeldAdd(Tcb& t, Semaphore& sem) {
  EM_ASSERT(sem.next_held == nullptr);
  sem.next_held = t.held_head;
  t.held_head = &sem;
}

void Kernel::HeldRemove(Tcb& t, Semaphore& sem) {
  Semaphore** link = &t.held_head;
  while (*link != nullptr) {
    if (*link == &sem) {
      *link = sem.next_held;
      sem.next_held = nullptr;
      return;
    }
    link = &(*link)->next_held;
  }
  EM_PANIC("semaphore '%s' not on holder '%s' held list", sem.name, t.name);
}

void Kernel::EnqueueWaiter(Semaphore& sem, Tcb& waiter) {
  int visits = 0;
  for (Tcb& other : sem.waiters) {
    ++visits;
    if (HigherPriority(waiter, other)) {
      sem.waiters.insert_before(other, waiter);
      Charge(ChargeCategory::kSemaphore, cost_.waitq_visit * visits);
      return;
    }
  }
  sem.waiters.push_back(waiter);
  Charge(ChargeCategory::kSemaphore, cost_.waitq_visit * visits);
}

Tcb* Kernel::HighestWaiter(Semaphore& sem, int* visits) {
  // Waiters are insert-sorted, but nested PI can change priorities after
  // enqueue, so the handoff rescans (visits are charged by the caller).
  *visits = 0;
  Tcb* best = nullptr;
  for (Tcb& w : sem.waiters) {
    ++*visits;
    if (best == nullptr || HigherPriority(w, *best)) {
      best = &w;
    }
  }
  return best;
}

// --- Priority inheritance ---

// Depth of the blocking chain hanging off `sem`: its holder, the semaphore
// that holder waits on, that semaphore's holder, and so on. Blocking on `sem`
// would make the chain one longer than the walk counts here. The walk stops
// at the cap, so a deadlock cycle (which has no end) also reports "too deep"
// instead of looping forever.
bool Kernel::PiChainTooDeep(const Semaphore& sem) const {
  int depth = 0;
  const Semaphore* s = &sem;
  while (s->owner != nullptr) {
    if (++depth >= kMaxPiChainDepth) {
      return true;
    }
    if (s->owner->blocked_on == nullptr) {
      return false;
    }
    s = s->owner->blocked_on;
  }
  return false;
}

void Kernel::DoInheritance(Semaphore& sem, Tcb& donor) {
  Semaphore* s = &sem;
  Tcb* d = &donor;
  int depth = 0;
  while (s->owner != nullptr) {
    if (++depth >= kMaxPiChainDepth) {
      // SysAcquire refuses chains this deep up front, but condvar wakes and
      // CSE early PI can still extend one concurrently; truncating the
      // propagation is safe (inheritance is a latency bound, not a safety
      // invariant), and panicking the node is not.
      ++stats_.pi_chain_limit_hits;
      trace_.Record(hw_.now(), TraceEventType::kPiChainLimit, d->id.value, s->id.value);
      break;
    }
    Tcb* holder = s->owner;
    if (!HigherPriority(*d, *holder)) {
      break;
    }
    InheritOne(*s, *holder, *d);
    if (holder->blocked_on == nullptr) {
      break;  // chain ends at a runnable holder
    }
    d = holder;
    s = holder->blocked_on;
  }
}

void Kernel::InheritOne(Semaphore& sem, Tcb& holder, Tcb& donor) {
  ++stats_.pi_inherits;
  trace_.Record(hw_.now(), TraceEventType::kPiInherit, holder.id.value, donor.id.value);
  Charge(ChargeCategory::kPi, cost_.pi_fixed);
  if (holder.core != active_core_) {
    // The holder's priority is about to rise on another core: that core must
    // re-evaluate its selection (priced cross-core kick; never fires at
    // num_cores=1, where every holder shares the active core).
    NotifyCore(holder.core, true);
  }

  if (donor.effective_band < holder.effective_band) {
    // Cross-band: the holder becomes selectable in the donor's (higher,
    // always EDF) band and adopts its deadline if earlier.
    sched_of(holder).BoostInto(holder, donor.effective_band);
    if (donor.effective_deadline < holder.effective_deadline) {
      holder.effective_deadline = donor.effective_deadline;
    }
    return;
  }

  Band& band = sched_of(holder).band(holder.effective_band);
  if (band.kind() == QueueKind::kEdfList) {
    // DP tasks: deadline inheritance is one TCB field — O(1) (Section 6.1).
    if (donor.effective_deadline < holder.effective_deadline) {
      holder.effective_deadline = donor.effective_deadline;
    }
    return;
  }

  // FP tasks.
  if (donor.effective_rm_rank >= holder.effective_rm_rank) {
    return;
  }
  RmBand* rm = sched_of(holder).FpBandOf(holder);
  // A place-holder swap exchanges two queue positions, so both threads must
  // live in the *same core's* FP band; cross-core donors take the standard
  // re-insert path below.
  bool can_swap = sem.mode == SemMode::kCse && rm != nullptr &&
                  holder.core == donor.core &&
                  sched_of(holder).CanSwapFp(holder, donor) &&
                  (holder.pi_swap_sem == nullptr || holder.pi_swap_sem == &sem);
  if (can_swap) {
    if (holder.pi_swap_sem == &sem) {
      // Third-thread case (Section 6.2): a higher-priority donor arrives
      // while the holder occupies the previous placeholder's slot. Restore
      // the old placeholder to its own position, then take the new donor's
      // slot — "one extra step ... the overhead is still O(1)".
      Tcb* old_placeholder = sem.placeholder;
      EM_ASSERT(old_placeholder != nullptr);
      rm->SwapForPi(holder, *old_placeholder);
      holder.effective_rm_rank = sem.holder_prev_rank;
      rm->SwapForPi(holder, donor);
      holder.effective_rm_rank = donor.effective_rm_rank;
      sem.placeholder = &donor;
      Charge(ChargeCategory::kPi, cost_.pi_swap + cost_.pi_swap);
      stats_.pi_swaps += 2;
    } else {
      // Common case: swap positions with the blocked donor; the donor is the
      // place-holder marking the holder's original slot.
      sem.holder_prev_rank = holder.effective_rm_rank;
      rm->SwapForPi(holder, donor);
      holder.effective_rm_rank = donor.effective_rm_rank;
      sem.placeholder = &donor;
      holder.pi_swap_sem = &sem;
      Charge(ChargeCategory::kPi, cost_.pi_swap);
      ++stats_.pi_swaps;
    }
    return;
  }

  // Standard path (and fallback for nested/multi-semaphore shapes the swap
  // does not cover): O(n) sorted re-insert at the inherited rank.
  DissolveSwap(holder);
  holder.effective_rm_rank = donor.effective_rm_rank;
  if (band.kind() == QueueKind::kRmHeap && !holder.ready) {
    return;  // the heap holds ready tasks only; the rank applies on unblock
  }
  int visits = band.Reposition(holder);
  Charge(ChargeCategory::kPi, cost_.pi_queue_visit * visits);
  ++stats_.pi_reinserts;
}

void Kernel::DissolveSwap(Tcb& holder) {
  Semaphore* sem = holder.pi_swap_sem;
  if (sem == nullptr) {
    return;
  }
  RmBand* rm = sched_of(holder).FpBandOf(holder);
  EM_ASSERT(rm != nullptr && sem->placeholder != nullptr);
  rm->SwapForPi(holder, *sem->placeholder);
  holder.effective_rm_rank = sem->holder_prev_rank;
  sem->placeholder = nullptr;
  holder.pi_swap_sem = nullptr;
  Charge(ChargeCategory::kPi, cost_.pi_swap);
  ++stats_.pi_swaps;
}

void Kernel::UndoInheritance(Tcb& holder, Semaphore& released) {
  Charge(ChargeCategory::kPi, cost_.pi_fixed);
  trace_.Record(hw_.now(), TraceEventType::kPiRestore, holder.id.value, released.id.value);
  if (holder.pi_swap_sem == &released) {
    // Swap back with the place-holder: both threads return to their original
    // positions in O(1) (Section 6.2's second optimized PI step).
    DissolveSwap(holder);
  }
  RecomputeEffective(holder);
}

void Kernel::RecomputeEffective(Tcb& t) {
  // Strongest of the base priority and every waiter on every held semaphore.
  int band = t.base_band;
  Instant deadline = t.periodic ? t.job_deadline : Instant::Max();
  int rank = t.base_rm_rank;
  for (Semaphore* s = t.held_head; s != nullptr; s = s->next_held) {
    for (Tcb& w : s->waiters) {
      if (w.effective_band < band) {
        band = w.effective_band;
        deadline = w.effective_deadline;
        rank = w.effective_rm_rank;
      } else if (w.effective_band == band) {
        if (w.effective_deadline < deadline) {
          deadline = w.effective_deadline;
        }
        if (w.effective_rm_rank < rank) {
          rank = w.effective_rm_rank;
        }
      }
    }
  }

  if (band < t.base_band) {
    if (t.boosted_into_band != band) {
      if (t.boosted_into_band >= 0) {
        sched_of(t).RemoveBoost(t);
      }
      sched_of(t).BoostInto(t, band);
    }
  } else if (t.boosted_into_band >= 0) {
    sched_of(t).RemoveBoost(t);
  }
  t.effective_deadline = deadline;

  if (t.effective_rm_rank != rank) {
    // A place-holder swap pinned this thread's position for a semaphore that
    // is still held; dissolve it before re-ranking so positions stay
    // rank-consistent.
    DissolveSwap(t);
    t.effective_rm_rank = rank;
    Band& home = sched_of(t).band(t.base_band);
    if (home.kind() == QueueKind::kRmList ||
        (home.kind() == QueueKind::kRmHeap && t.ready)) {
      int visits = home.Reposition(t);
      Charge(ChargeCategory::kPi, cost_.pi_queue_visit * visits);
      ++stats_.pi_reinserts;
    }
  }
}

// --- Pre-acquire queue (Section 6.3.1) ---

void Kernel::JoinPreAcquire(Semaphore& sem, Tcb& t) {
  if (t.preacq_sem == &sem) {
    return;
  }
  if (t.preacq_sem != nullptr) {
    LeavePreAcquire(t);
  }
  sem.pre_acquire.push_back(t);
  t.preacq_sem = &sem;
  Charge(ChargeCategory::kSemaphore, cost_.waitq_visit);
}

void Kernel::LeavePreAcquire(Tcb& t) {
  EM_ASSERT(t.preacq_sem != nullptr);
  t.preacq_sem->pre_acquire.erase(t);
  t.preacq_sem = nullptr;
}

void Kernel::FreezePreAcquirers(Semaphore& sem, Tcb& except) {
  if (sem.mode != SemMode::kCse) {
    return;
  }
  for (Tcb& member : sem.pre_acquire) {
    if (&member == &except || !member.runnable()) {
      continue;
    }
    BlockThread(member, BlockReason::kPreAcquire);
    ++stats_.preacquire_freezes;
  }
}

void Kernel::ThawPreAcquirers(Semaphore& sem) {
  for (Tcb& member : sem.pre_acquire) {
    if (member.state == ThreadState::kBlocked &&
        member.block_reason == BlockReason::kPreAcquire) {
      MakeReady(member);
    }
  }
}

// --- Acquire / release ---

Kernel::SyscallOutcome Kernel::SysAcquire(Tcb& t, SemId id) {
  EM_ASSERT(&t == cores_[t.core]->current);
  ++stats_.syscalls;
  ScopedSemPath path(*this);
  Charge(ChargeCategory::kSyscall, cost_.syscall);
  Semaphore* sem = SemPtr(id);
  if (sem == nullptr) {
    t.syscall_status = Status::kBadHandle;
    return {false};
  }
  if (!sem->access.Allows(t.process)) {
    t.syscall_status = Status::kPermissionDenied;
    return {false};
  }
  ++stats_.sem_acquires;
  ++sem->acquires;

  if (t.preacq_sem == sem) {
    LeavePreAcquire(t);
  } else if (t.preacq_sem != nullptr) {
    ++stats_.cse_hint_misses;
    LeavePreAcquire(t);
  }

  if (t.cse_granted) {
    // The lock was handed over while we were still blocked on the preceding
    // call (Figure 8); acquire_sem degenerates to a flag check.
    EM_ASSERT_MSG(sem->owner == &t, "CSE grant inconsistency on '%s'", sem->name);
    t.cse_granted = false;
    t.cse_waiter = false;
    Charge(ChargeCategory::kSemaphore, cost_.sem_cse_check);
    ++stats_.cse_switches_saved;
    t.syscall_status = Status::kOk;
    trace_.Record(hw_.now(), TraceEventType::kSemAcquire, t.id.value, sem->id.value);
    if (need_resched()) {
      t.resume_pending = true;
      return {true};
    }
    return {false};
  }

  Charge(ChargeCategory::kSemaphore, cost_.sem_fixed);
  if (sem->binary) {
    if (sem->owner == nullptr) {
      sem->owner = &t;
      sem->count = 0;
      HeldAdd(t, *sem);
      FreezePreAcquirers(*sem, t);
      t.syscall_status = Status::kOk;
      trace_.Record(hw_.now(), TraceEventType::kSemAcquire, t.id.value, sem->id.value);
      if (need_resched()) {
        t.resume_pending = true;
        return {true};
      }
      return {false};
    }
    EM_ASSERT_MSG(sem->owner != &t, "recursive acquire of '%s' by '%s'", sem->name, t.name);
    if (PiChainTooDeep(*sem)) {
      // Deep-but-legal nesting (or an outright deadlock cycle): refuse the
      // acquire instead of blocking into a chain the PI walk cannot cover.
      // Checked before the kSemAcquireBlock record so the trace never shows
      // an unresolvable block.
      ++stats_.pi_chain_limit_hits;
      t.syscall_status = Status::kResourceExhausted;
      trace_.Record(hw_.now(), TraceEventType::kPiChainLimit, t.id.value, sem->id.value);
      return {false};
    }
    // Contended path (Figures 6/7): PI, join the wait queue, block.
    ++stats_.sem_contended;
    ++sem->contended_acquires;
    trace_.Record(hw_.now(), TraceEventType::kSemAcquireBlock, t.id.value, sem->id.value);
    t.syscall_status = Status::kOk;  // holds the lock when it resumes
    t.blocked_on = sem;
    BlockThread(t, BlockReason::kWaitSem);
    EnqueueWaiter(*sem, t);
    DoInheritance(*sem, t);
    return {true};
  }

  // Counting semaphore: no ownership, no PI (the paper's scheme "primarily
  // deals with semaphores used as binary mutual-exclusion locks").
  if (sem->count > 0) {
    --sem->count;
    t.syscall_status = Status::kOk;
    trace_.Record(hw_.now(), TraceEventType::kSemAcquire, t.id.value, sem->id.value);
    // Pick up the latest producer's token (a count above one means several
    // acquires may observe the same emit — permitted multi-consume).
    ChainConsume(ChainEndpointPack(ChainEndpointKind::kSem, sem->id.value), sem->token, t);
    if (need_resched()) {
      t.resume_pending = true;
      return {true};
    }
    return {false};
  }
  ++stats_.sem_contended;
  ++sem->contended_acquires;
  trace_.Record(hw_.now(), TraceEventType::kSemAcquireBlock, t.id.value, sem->id.value);
  t.syscall_status = Status::kOk;
  t.blocked_on = sem;
  BlockThread(t, BlockReason::kWaitSem);
  EnqueueWaiter(*sem, t);
  return {true};
}

Kernel::SyscallOutcome Kernel::SysRelease(Tcb& t, SemId id) {
  EM_ASSERT(&t == cores_[t.core]->current);
  ++stats_.syscalls;
  ScopedSemPath path(*this);
  Charge(ChargeCategory::kSyscall, cost_.syscall);
  Semaphore* sem = SemPtr(id);
  if (sem == nullptr) {
    t.syscall_status = Status::kBadHandle;
    return {false};
  }
  if (!sem->access.Allows(t.process)) {
    t.syscall_status = Status::kPermissionDenied;
    return {false};
  }
  Charge(ChargeCategory::kSemaphore, cost_.sem_fixed);

  if (sem->binary) {
    if (sem->owner != &t) {
      t.syscall_status = Status::kFailedPrecondition;
      return {false};
    }
    trace_.Record(hw_.now(), TraceEventType::kSemRelease, t.id.value, sem->id.value);
    ReleaseLocked(t, *sem);
  } else {
    trace_.Record(hw_.now(), TraceEventType::kSemRelease, t.id.value, sem->id.value);
    // A counting release is a producing operation: propagate the releaser's
    // carried token through the handoff (binary mutexes carry no dataflow).
    int32_t endpoint = ChainEndpointPack(ChainEndpointKind::kSem, sem->id.value);
    CausalToken token = ChainEmit(endpoint, &t);
    int visits = 0;
    Tcb* waiter = HighestWaiter(*sem, &visits);
    Charge(ChargeCategory::kSemaphore, cost_.waitq_visit * visits);
    if (waiter != nullptr) {
      sem->waiters.erase(*waiter);
      waiter->blocked_on = nullptr;
      waiter->syscall_status = Status::kOk;
      ++sem->handoffs;
      ++stats_.sem_handoffs;
      // The blocked acquire completes at handoff; record it so the trace
      // analyzer sees every kSemAcquireBlock resolved.
      trace_.Record(hw_.now(), TraceEventType::kSemAcquire, waiter->id.value, sem->id.value);
      ChainConsume(endpoint, token, *waiter);
      MakeReady(*waiter);
    } else if (sem->count < (1 << 30)) {
      // Counting semaphores may exceed their initial count (timer signals,
      // producer tokens); the cap only guards against runaway loops.
      ++sem->count;
      sem->token = token;
    }
  }

  t.syscall_status = Status::kOk;
  if (need_resched()) {
    t.resume_pending = true;
    return {true};
  }
  return {false};
}

void Kernel::ReleaseLocked(Tcb& owner, Semaphore& sem) {
  HeldRemove(owner, sem);
  UndoInheritance(owner, sem);
  int visits = 0;
  Tcb* waiter = HighestWaiter(sem, &visits);
  Charge(ChargeCategory::kSemaphore, cost_.waitq_visit * visits);
  if (waiter != nullptr) {
    sem.waiters.erase(*waiter);
    GrantTo(sem, *waiter);
  } else {
    sem.owner = nullptr;
    sem.count = 1;
    // "when T1 calls release_sem(), the OS unblocks all threads in the
    // [pre-acquire] queue."
    ThawPreAcquirers(sem);
  }
}

void Kernel::GrantTo(Semaphore& sem, Tcb& waiter) {
  sem.owner = &waiter;
  sem.count = 0;
  HeldAdd(waiter, sem);
  waiter.blocked_on = nullptr;
  ++sem.handoffs;
  ++stats_.sem_handoffs;
  if (waiter.cse_waiter) {
    // The waiter never executed acquire_sem(); hand it the lock and let its
    // (already satisfied) blocking call resume — this is the saved switch.
    waiter.cse_granted = true;
    ++stats_.cse_grants;
  }
  waiter.syscall_status = Status::kOk;
  trace_.Record(hw_.now(), TraceEventType::kSemAcquire, waiter.id.value, sem.id.value);
  MakeReady(waiter);
}

}  // namespace emeralds
