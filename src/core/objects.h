// Kernel object definitions: semaphores, condition variables, mailboxes,
// state messages, shared-memory regions, processes.

#ifndef SRC_CORE_OBJECTS_H_
#define SRC_CORE_OBJECTS_H_

#include <cstdint>
#include <memory>

#include "src/base/intrusive_list.h"
#include "src/base/ring_buffer.h"
#include "src/base/static_vector.h"
#include "src/base/time.h"
#include "src/core/config.h"
#include "src/core/ids.h"
#include "src/core/tcb.h"

namespace emeralds {

// Which processes may use an object. Bit i of `mask` grants process i; the
// default grants everyone (embedded applications often run in one protection
// domain, but the checks are real when a mask is set).
struct AccessPolicy {
  uint32_t mask = 0xffffffff;

  bool Allows(ProcessId process) const {
    return process.valid() && process.value < 32 && (mask & (1u << process.value)) != 0;
  }
  static AccessPolicy Only(std::initializer_list<ProcessId> processes) {
    AccessPolicy policy{0};
    for (ProcessId p : processes) {
      policy.mask |= 1u << p.value;
    }
    return policy;
  }
};

struct Process {
  ProcessId id;
  char name[24] = {};
  // Per-region mapping rights: bit r of map_read/map_write covers region r.
  uint64_t map_read = 0;
  uint64_t map_write = 0;
};

struct Semaphore {
  SemId id;
  char name[24] = {};
  SemMode mode = SemMode::kCse;
  int initial_count = 1;
  int count = 1;
  bool binary = true;  // initial_count == 1: mutex semantics with PI

  Tcb* owner = nullptr;  // binary semaphores: current lock holder

  // Wait queue, ordered highest effective priority first.
  IntrusiveList<Tcb, &Tcb::wait_node> waiters;

  // Pre-acquire queue (Section 6.3.1): threads whose preceding blocking call
  // completed with this semaphore as their hint, but which have not yet
  // called acquire_sem(). While the semaphore is held, members are frozen.
  IntrusiveList<Tcb, &Tcb::preacq_node> pre_acquire;

  // Place-holder PI bookkeeping (Section 6.2): when the holder inherits an
  // FP waiter's priority we swap their queue positions; `placeholder` is the
  // blocked waiter standing in the holder's old slot, and `holder_prev_rank`
  // is the rank the holder returns to when the swap is undone.
  Tcb* placeholder = nullptr;
  int holder_prev_rank = 0;

  // Owner's held-semaphores list (singly linked through semaphores).
  Semaphore* next_held = nullptr;

  AccessPolicy access;

  uint64_t acquires = 0;
  uint64_t contended_acquires = 0;
  uint64_t handoffs = 0;

  // Counting semaphores: token stamped by the most recent signal/release,
  // picked up by the next acquire. A single overwritten slot — a count > 1
  // means later acquires may observe the latest producer's token (the
  // analyzer permits multi-consume of one emit for exactly this reason).
  // Binary mutexes carry no dataflow and never touch it.
  CausalToken token;
};

struct Condvar {
  CondvarId id;
  char name[24] = {};
  IntrusiveList<Tcb, &Tcb::wait_node> waiters;  // highest effective prio first
  AccessPolicy access;
  uint64_t signals = 0;
  uint64_t broadcasts = 0;
};

inline constexpr size_t kMaxMessageBytes = 64;

struct MboxMessage {
  StaticVector<uint8_t, kMaxMessageBytes> bytes;
  ThreadId sender;
  Instant sent_at;
  CausalToken token;  // sender's causal token at send time
};

struct Mailbox {
  MailboxId id;
  char name[24] = {};
  std::unique_ptr<RingBuffer<MboxMessage>> queue;
  IntrusiveList<Tcb, &Tcb::wait_node> recv_waiters;  // highest prio first
  IntrusiveList<Tcb, &Tcb::wait_node> send_waiters;  // highest prio first
  AccessPolicy access;
  uint64_t sends = 0;
  uint64_t receives = 0;
  uint64_t send_blocks = 0;
  uint64_t recv_blocks = 0;
  uint64_t recv_timeouts = 0;
};

// Single-writer multi-reader state message (Section 7, reconstructed). The
// writer rotates through `num_slots` versioned slots and commits with a single
// index store; readers validate their slot's version after the (preemptible)
// copy and retry if the writer lapped them.
struct StateMessageBuffer {
  SmsgId id;
  char name[24] = {};
  size_t size = 0;       // payload bytes per slot
  int num_slots = 0;
  std::unique_ptr<uint8_t[]> data;      // num_slots * size
  std::unique_ptr<uint64_t[]> slot_seq; // 0 = slot being written / invalid
  // Writer's causal token per slot, committed together with slot_seq; a
  // reader whose seqlock validation succeeds reads a consistent token.
  std::unique_ptr<CausalToken[]> slot_token;
  int latest_slot = -1;
  uint64_t latest_seq = 0;
  ThreadId writer;  // exclusive writer, fixed at creation or first write
  AccessPolicy access;
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t read_retries = 0;

  uint8_t* SlotData(int slot) { return data.get() + static_cast<size_t>(slot) * size; }

  // Minimum slot count guaranteeing retry-free reads: the writer may commit
  // at most ceil(read_time / writer_period) times during one read, plus the
  // slot being read and the slot under construction.
  static int MinSlots(Duration max_read_time, Duration writer_min_period) {
    EM_ASSERT(writer_min_period.is_positive());
    int64_t commits = (max_read_time.nanos() + writer_min_period.nanos() - 1) /
                      writer_min_period.nanos();
    return static_cast<int>(commits) + 2;
  }
};

struct SharedRegion {
  RegionId id;
  char name[24] = {};
  size_t size = 0;
  std::unique_ptr<uint8_t[]> data;
};

// Application timer (Figure 1's "Timers" service): one-shot or periodic;
// each expiry signals a counting semaphore, the classic RTOS timer-to-task
// notification (a thread paces itself by acquiring the semaphore).
struct UserTimer {
  TimerId id;
  char name[24] = {};
  SemId signal_target;
  Duration period;  // zero => one-shot
  SoftTimer soft;
  uint64_t fires = 0;
  uint64_t overruns = 0;  // expiries that found the previous signal unconsumed
};

}  // namespace emeralds

#endif  // SRC_CORE_OBJECTS_H_
