// Coroutine plumbing for thread bodies.
//
// Application threads are written as C++20 coroutines; every kernel
// interaction is a co_await on an awaitable returned by ThreadApi. The kernel
// executive owns the coroutine handle and resumes it when the thread is
// dispatched. Code between awaits runs in zero virtual time; CPU consumption
// is modelled explicitly with ThreadApi::Compute().

#ifndef SRC_CORE_THREAD_BODY_H_
#define SRC_CORE_THREAD_BODY_H_

#include <coroutine>

#include "src/base/assert.h"

namespace emeralds {

// Return type of a thread-body coroutine. Ownership of the handle transfers
// to the kernel when the thread is created.
class ThreadBody {
 public:
  struct promise_type {
    ThreadBody get_return_object() {
      return ThreadBody(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { EM_PANIC("exception escaped a thread body"); }
  };

  ThreadBody() = default;
  explicit ThreadBody(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  // The kernel takes the handle exactly once at thread creation.
  std::coroutine_handle<> release() {
    auto h = handle_;
    handle_ = nullptr;
    return h;
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace emeralds

#endif  // SRC_CORE_THREAD_BODY_H_
