// Pending software timers, ordered by (expiry, arm_seq).
//
// Two interchangeable implementations behind one interface (selected by
// KernelConfig::timer_queue):
//
//   kSortedList — the seed implementation: one expiry-ordered intrusive list.
//     O(n) arm, O(1) cancel and min. Kept as the reference for differential
//     testing.
//
//   kWheel — a hierarchical timer wheel: kLevels levels of kSlots power-of-two
//     buckets (1.024 us granularity at level 0, each level kSlots times
//     coarser), an ordered overflow list for expiries beyond the outermost
//     level's span (~275 s), and an ordered "due" list for the rare arm whose
//     expiry tick is already behind the wheel base. Arm and cancel are O(1);
//     Min() is O(1) while the cached minimum is valid and O(kLevels * kSlots +
//     bucket occupancy) to recompute after the minimum is removed.
//
// The determinism contract: Min() returns the exact global minimum by
// (expiry, arm_seq) — never an approximation — so the kernel programs the
// hardware one-shot timer and dispatches expiries in precisely the order the
// reference list would, and every trace digest, cycle ledger, and chain
// oracle stays bit-identical across implementations. The wheel guarantees
// exactness because each level holds only timers whose tick offset from the
// wheel base fits the level's span, which bounds every slot to at most one
// wrap: scanning a level's slots from the base cursor visits candidate ticks
// in increasing order, and the first slot containing an unwrapped entry
// dominates every later slot and every wrapped entry.
//
// The queue is host-side bookkeeping for the simulated timer service: its
// operations cost no virtual time (the cost model's timer_dispatch covers the
// simulated expense), so swapping implementations cannot shift the ledger.

#ifndef SRC_CORE_TIMER_QUEUE_H_
#define SRC_CORE_TIMER_QUEUE_H_

#include <cstddef>
#include <cstdint>

#include "src/base/time.h"
#include "src/core/timer.h"

namespace emeralds {

class TimerQueue {
 public:
  explicit TimerQueue(TimerQueueImpl impl = TimerQueueImpl::kWheel) : impl_(impl) {}
  ~TimerQueue() { Clear(); }
  TimerQueue(const TimerQueue&) = delete;
  TimerQueue& operator=(const TimerQueue&) = delete;

  // Files `timer` (expiry and arm_seq already set; must not be armed). `now`
  // lets the wheel advance its base so near-future timers land in the finest
  // level; it never affects ordering.
  void Insert(SoftTimer& timer, Instant now);

  // Unlinks an armed timer (cancel or expiry dispatch).
  void Remove(SoftTimer& timer);

  // Exact global minimum by (expiry, arm_seq); nullptr when empty.
  SoftTimer* Min();

  // Unlinks everything (kernel teardown).
  void Clear();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  TimerQueueImpl impl() const { return impl_; }

  // (expiry, arm_seq) lexicographic order — the one ordering both
  // implementations and the hardware timer queue agree on.
  static bool Before(const SoftTimer& a, const SoftTimer& b) {
    return a.expiry < b.expiry || (a.expiry == b.expiry && a.arm_seq < b.arm_seq);
  }

 private:
  // Wheel geometry: 64-slot levels, 2^10 ns (1.024 us) base granularity.
  // Level spans: ~65.5 us, ~4.19 ms, ~268 ms; beyond that, the overflow list.
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;
  static constexpr int kLevels = 3;
  static constexpr int kGranularityShift = 10;

  // SoftTimer::queue_loc values.
  static constexpr int8_t kLocNone = -1;
  static constexpr int8_t kLocOverflow = kLevels;
  static constexpr int8_t kLocDue = kLevels + 1;
  static constexpr int8_t kLocList = kLevels + 2;  // sorted-list implementation

  // Ticks [0, 64^(level+1)) ahead of the base are filed at `level` or below.
  static constexpr uint64_t LevelSpan(int level) {
    return uint64_t{1} << (kSlotBits * (level + 1));
  }
  static uint64_t TickOf(Instant t) {
    return static_cast<uint64_t>(t.nanos()) >> kGranularityShift;
  }

  void SortedInsert(SoftTimerList& list, SoftTimer& timer);
  void FileIntoWheel(SoftTimer& timer);
  void MaybeAdvanceBase(Instant now);
  SoftTimer* LevelMin(int level);
  SoftTimer* RecomputeMin();

  TimerQueueImpl impl_;
  size_t size_ = 0;

  // Cached global minimum: kept exact across Insert (a smaller arrival takes
  // the cache) and invalidated only when the cached timer itself is removed.
  SoftTimer* cached_min_ = nullptr;
  bool cache_valid_ = true;  // valid-and-null means known empty

  // kSortedList storage.
  SoftTimerList list_;

  // kWheel storage. base_tick_ is a monotone lower bound on the expiry tick
  // of every timer filed in the levels (the filing invariant the Min() scan
  // relies on); it advances toward min(now, global minimum) as the clock
  // moves, pulling overflow timers into the levels as their horizon nears.
  uint64_t base_tick_ = 0;
  SoftTimerList levels_[kLevels][kSlots];
  SoftTimerList overflow_;  // expiry-ordered, beyond LevelSpan(kLevels - 1)
  SoftTimerList due_;       // expiry-ordered, tick already behind base_tick_
};

}  // namespace emeralds

#endif  // SRC_CORE_TIMER_QUEUE_H_
