// Typed kernel object identifiers.
//
// EMERALDS names kernel objects with small statically-assigned integers
// ("Semaphore identifiers are statically defined (at compile time) ... as is
// commonly the case in OSs for small-memory applications", Section 6.2.1).
// Thin wrapper types keep the ids from being mixed up at call sites.

#ifndef SRC_CORE_IDS_H_
#define SRC_CORE_IDS_H_

#include <compare>

namespace emeralds {

namespace internal {

template <typename Tag>
struct Id {
  int value = -1;

  constexpr Id() = default;
  explicit constexpr Id(int v) : value(v) {}

  constexpr bool valid() const { return value >= 0; }
  constexpr auto operator<=>(const Id&) const = default;
};

}  // namespace internal

using ThreadId = internal::Id<struct ThreadTag>;
using ProcessId = internal::Id<struct ProcessTag>;
using SemId = internal::Id<struct SemTag>;
using CondvarId = internal::Id<struct CondvarTag>;
using MailboxId = internal::Id<struct MailboxTag>;
using SmsgId = internal::Id<struct SmsgTag>;
using RegionId = internal::Id<struct RegionTag>;
using TimerId = internal::Id<struct TimerTag>;

// "No semaphore upcoming": the -1 the paper's code parser writes into
// blocking calls that are not followed by acquire_sem().
inline constexpr SemId kNoSem{};

// The kernel's own process (process 0 is created implicitly and owns kernel
// threads and objects created without an explicit owner).
inline constexpr ProcessId kKernelProcess{0};

}  // namespace emeralds

#endif  // SRC_CORE_IDS_H_
