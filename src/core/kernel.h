// The EMERALDS kernel.
//
// One Kernel instance is one node: it owns the thread/semaphore/IPC object
// pools, the CSD scheduler, the software-timer service, the interrupt
// handlers, and the executive that runs application coroutines on the virtual
// CPU. Construction allocates every pool ("kernel init"); nothing allocates
// on kernel fast paths afterwards.
//
// Paper mapping:
//   Section 5  -> Scheduler/Band (src/core/band.h, scheduler.h), executive
//   Section 6  -> SysAcquire/SysRelease/WakeThread (semaphore.cc) with
//                 context-switch elimination, early PI, the pre-acquire
//                 queue, and place-holder PI swaps
//   Section 7  -> mailboxes and state messages (ipc.cc)
//   Figure 1   -> condition variables, timers/clock services, interrupt
//                 handling and user-level device-driver support, processes
//                 with memory protection

#ifndef SRC_CORE_KERNEL_H_
#define SRC_CORE_KERNEL_H_

#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/base/time.h"
#include "src/core/band.h"
#include "src/core/config.h"
#include "src/core/objects.h"
#include "src/core/scheduler.h"
#include "src/core/stats.h"
#include "src/core/tcb.h"
#include "src/core/timer_queue.h"
#include "src/hal/hardware.h"
#include "src/hal/trace.h"

namespace emeralds {

// Recv() timeout sentinel: fail with kWouldBlock instead of blocking.
inline constexpr Duration kNoWait = Nanoseconds(-1);

// Longest blocking chain (holder -> semaphore the holder waits on -> its
// holder -> ...) the priority-inheritance walk will traverse. An acquire that
// would extend a chain to this depth fails with kResourceExhausted and a
// kPiChainLimit trace instant instead of panicking the node.
inline constexpr int kMaxPiChainDepth = 16;

class Kernel {
 public:
  Kernel(Hardware& hw, const KernelConfig& config);
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- Configuration phase (before Start) ---

  Result<ProcessId> CreateProcess(const char* name);
  Result<ThreadId> CreateThread(const ThreadParams& params);
  Result<SemId> CreateSemaphore(const char* name, int initial_count = 1,
                                AccessPolicy access = {});
  // Overrides the kernel-wide default semaphore mode for one semaphore.
  Result<SemId> CreateSemaphoreWithMode(const char* name, int initial_count, SemMode mode,
                                        AccessPolicy access = {});
  Result<CondvarId> CreateCondvar(const char* name, AccessPolicy access = {});
  Result<MailboxId> CreateMailbox(const char* name, size_t depth, AccessPolicy access = {});
  Result<SmsgId> CreateStateMessage(const char* name, size_t size_bytes, int num_slots,
                                    AccessPolicy access = {});
  Result<RegionId> CreateRegion(const char* name, size_t size_bytes);
  Status MapRegion(ProcessId process, RegionId region, bool read, bool write);

  // Application timers (Figure 1's clock services): each expiry releases the
  // counting semaphore `signal_target` (create it with initial_count 0); a
  // thread paces itself by acquiring it. Start/Stop may be called at any
  // time, including from the host between RunUntil calls.
  Result<TimerId> CreateTimer(const char* name, SemId signal_target);
  Status StartTimer(TimerId timer, Duration initial_delay, Duration period = Duration());
  Status StopTimer(TimerId timer);
  const UserTimer& user_timer(TimerId id) const;
  // Routes `line` to `thread`: the kernel ISR stub wakes the (user-level)
  // driver thread on each interrupt.
  Status BindIrqThread(ThreadId thread, int line);

  // Observability: samples KernelStats into a delta-encoded ring every
  // `period` of virtual time, driven by a kernel software timer (charged as
  // timer-service work like any other expiry). Call before Start(); the ring
  // (`capacity` samples) is allocated here, never on the sampling path.
  void EnableStatsSampling(Duration period, size_t capacity);

  // Releases periodic threads (at their first_release offsets) and readies
  // aperiodic ones. Assigns rate-monotonic ranks to threads that asked for
  // automatic ranking.
  void Start();

  // --- Execution ---

  // Runs the node until the virtual clock reaches `t` (work stamped exactly
  // `t` is processed; thread code at `t` is not started).
  void RunUntil(Instant t);
  void RunFor(Duration d) { RunUntil(hw_.now() + d); }

  // --- Introspection ---

  Instant now() const { return hw_.now(); }
  bool started() const { return started_; }
  const KernelStats& stats() const { return stats_; }
  // Snapshot ring; nullptr unless EnableStatsSampling() was called.
  const StatsSampler* stats_sampler() const { return stats_sampler_.get(); }
  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }
  // Core 0's scheduler (the only core at num_cores=1); per-core overloads
  // below for SMP introspection.
  Scheduler& scheduler() { return cores_[0]->sched; }
  const Scheduler& scheduler() const { return cores_[0]->sched; }
  Scheduler& scheduler(int core) { return cores_[core]->sched; }
  const Scheduler& scheduler(int core) const { return cores_[core]->sched; }
  int num_cores() const { return config_.num_cores; }
  const CostModel& cost_model() const { return cost_; }
  Hardware& hardware() { return hw_; }
  const Hardware& hardware() const { return hw_; }

  size_t thread_count() const { return threads_.size(); }
  const Tcb& thread(ThreadId id) const;
  ThreadId current_thread() const { return current_thread(0); }
  ThreadId current_thread(int core) const {
    return cores_[core]->current != nullptr ? cores_[core]->current->id : ThreadId();
  }
  const Semaphore& semaphore(SemId id) const;
  const Mailbox& mailbox(MailboxId id) const;
  const StateMessageBuffer& state_message(SmsgId id) const;
  const Condvar& condvar(CondvarId id) const;

  // Resets the per-category charge accounting (not the object state); benches
  // use this to measure windows.
  void ResetChargeAccounting();

  // Prints a per-thread status table (state, band, jobs, misses, response
  // times, CPU time) to stdout. Debugging/CLI aid.
  void DumpThreads() const;

  // Shared-memory access check: returns the region bytes when `process`
  // mapped the region with sufficient rights, else an empty span.
  std::span<uint8_t> RegionDataFor(ProcessId process, RegionId region, bool write);

  // Declared chains after Start()-time name resolution (empty before Start
  // or when the config declared none). The chain analyzer and report builder
  // consume these.
  const std::vector<ResolvedChain>& resolved_chains() const { return resolved_chains_; }

 private:
  friend class ThreadApi;
  friend struct internal::ComputeAwait;
  friend struct internal::WaitPeriodAwait;
  friend struct internal::AcquireAwait;
  friend struct internal::ReleaseAwait;
  friend struct internal::CondWaitAwait;
  friend struct internal::CondWakeAwait;
  friend struct internal::SendAwait;
  friend struct internal::RecvAwait;
  friend struct internal::StateWriteAwait;
  friend struct internal::StateReadAwait;
  friend struct internal::SleepAwait;
  friend struct internal::WaitIrqAwait;
  friend struct internal::YieldAwait;

  struct SyscallOutcome {
    bool suspend;
  };

  // Per-core scheduler state block (partitioned SMP). Every core owns a full
  // band set built from the same SchedulerSpec, its own current thread, and
  // its own reschedule flags; threads are pinned to one core at creation and
  // never migrate. At num_cores=1 this is exactly the paper's single CPU.
  struct CoreState {
    explicit CoreState(const SchedulerSpec& spec) : sched(spec) {}
    Scheduler sched;
    Tcb* current = nullptr;
    bool need_resched = false;
    // Attribution for the next context switch: true when a semaphore
    // operation triggered the pending reschedule.
    bool resched_from_sem = false;
    // The current thread's compute drained to zero inside a clock advance;
    // the executive finishes the drain (ServiceDrains) before anything else.
    bool drain_pending = false;
  };

  // RAII: marks which core the kernel is acting on behalf of, so charges land
  // in that core's ledger and bill that core's current thread. ISR and host
  // context always run as core 0 (the boot core owns the hardware timer).
  class ScopedActiveCore {
   public:
    ScopedActiveCore(Kernel& kernel, int core) : kernel_(kernel), prev_(kernel.active_core_) {
      kernel_.active_core_ = core;
    }
    ~ScopedActiveCore() { kernel_.active_core_ = prev_; }

   private:
    Kernel& kernel_;
    int prev_;
  };

  // RAII scope marking charges as semaphore-path time (Figure 11's metric).
  class ScopedSemPath {
   public:
    explicit ScopedSemPath(Kernel& kernel) : kernel_(kernel), prev_(kernel.sem_path_) {
      kernel_.sem_path_ = true;
    }
    ~ScopedSemPath() { kernel_.sem_path_ = prev_; }

   private:
    Kernel& kernel_;
    bool prev_;
  };

  // Hardware one-shot timer: expiry raises the timer IRQ line.
  class OneShotTimer : public HardwareTimer {
   public:
    void OnExpire(Hardware& hw) override { hw.irq().Raise(kIrqTimer); }
  };

  // --- Syscall implementations (called from awaitables; `t` == current) ---
  SyscallOutcome SysCompute(Tcb& t, Duration amount);
  SyscallOutcome SysWaitPeriod(Tcb& t, SemId next_sem);
  SyscallOutcome SysAcquire(Tcb& t, SemId sem);
  SyscallOutcome SysRelease(Tcb& t, SemId sem);
  SyscallOutcome SysCondWait(Tcb& t, CondvarId condvar, SemId mutex);
  SyscallOutcome SysCondWake(Tcb& t, CondvarId condvar, bool broadcast);
  SyscallOutcome SysSend(Tcb& t, MailboxId mailbox, std::span<const uint8_t> data, bool wait);
  SyscallOutcome SysRecv(Tcb& t, MailboxId mailbox, std::span<uint8_t> buffer, Duration timeout,
                         SemId next_sem);
  SyscallOutcome SysStateWrite(Tcb& t, SmsgId smsg, std::span<const uint8_t> data);
  SyscallOutcome SysStateRead(Tcb& t, SmsgId smsg, std::span<uint8_t> buffer);
  SyscallOutcome SysSleep(Tcb& t, Duration amount, SemId next_sem);
  SyscallOutcome SysWaitIrq(Tcb& t, int line, SemId next_sem);
  SyscallOutcome SysYield(Tcb& t);

  // --- Executive ---
  void Reschedule(int core);
  void ContextSwitch(int core, Tcb* next);
  void ResumeThread(Tcb& t);
  void FinishComputeDrain(Tcb& t);
  bool ServiceDrains();
  // Advances every core in lockstep by `amount`: cores whose current thread
  // is mid-compute burn user time, the rest burn idle time.
  void AdvanceWorld(Duration amount);
  // Called under a ChargeBucket advance: while the active core does kernel
  // work for `amount`, every *other* core keeps running its own current
  // thread's compute (or idles). Empty at num_cores=1.
  void MirrorAdvance(Duration amount);
  void AdvanceIdleTo(Instant target);
  void DispatchDueWork();
  void Watchdog();
  // Requests a reschedule on `core`; a cross-core request prices one virtual
  // IPI (CycleBucket::kIpi) against the active core.
  void NotifyCore(int core, bool from_sem);

  // Scheduler that owns thread `t` (its pinned core's band set).
  Scheduler& sched_of(const Tcb& t) { return cores_[t.core]->sched; }
  bool need_resched() const { return cores_[active_core_]->need_resched; }
  // Priority comparison is config-derived and identical on every core, so
  // core 0's scheduler answers for cross-core pairs too (wait queues are
  // shared between cores; band sets are not).
  bool HigherPriority(const Tcb& a, const Tcb& b) const {
    return cores_[0]->sched.HigherPriority(a, b);
  }

  // --- Charging ---
  // Every path that advances the virtual clock funnels through ChargeBucket,
  // AdvanceCompute, or AdvanceIdleTo, each of which mirrors the advance into
  // the stats ledger (and the current thread's) — that is what makes the
  // cycle-conservation invariant hold to the tick.
  void Charge(ChargeCategory category, Duration amount);
  void ChargeBucket(ChargeCategory category, CycleBucket bucket, Duration amount);
  void ChargeQueueOps(const ChargeList& charges);

  // --- Thread state transitions ---
  void BlockThread(Tcb& t, BlockReason reason);
  void MakeReady(Tcb& t);
  // The unblock path with the CSE hook (Section 6.2): may convert the wake
  // into early PI (thread stays blocked) or a pre-acquire enqueue.
  void WakeThread(Tcb& t);
  void ExitThread(Tcb& t);

  // --- Timers / clock service ---
  void ArmSoftTimer(SoftTimer& timer, Instant expiry);
  void CancelSoftTimer(SoftTimer& timer);
  void ProgramHardwareTimer();
  void TimerIsr();
  void HandlePeriodRelease(Tcb& t);
  void HandleTimeout(Tcb& t);
  void HandleUserTimer(UserTimer& timer);
  void StartJob(Tcb& t);
  // Headroom monitor halves: predict slack at release, record the observed
  // cost EWMA and worst slack at completion.
  void PredictHeadroom(Tcb& t);
  void RecordJobCost(Tcb& t);
  // ISR-context counting-semaphore signal (no owner, no PI).
  void SignalCountingSem(Semaphore& sem, uint64_t* overruns);

  // --- Semaphore internals (semaphore.cc) ---
  Semaphore* SemPtr(SemId id);
  void EnqueueWaiter(Semaphore& sem, Tcb& waiter);
  Tcb* HighestWaiter(Semaphore& sem, int* visits);
  bool PiChainTooDeep(const Semaphore& sem) const;
  void DoInheritance(Semaphore& sem, Tcb& donor);
  void InheritOne(Semaphore& sem, Tcb& holder, Tcb& donor);
  void DissolveSwap(Tcb& holder);
  void UndoInheritance(Tcb& holder, Semaphore& released);
  void RecomputeEffective(Tcb& t);
  void ReleaseLocked(Tcb& owner, Semaphore& sem);
  void GrantTo(Semaphore& sem, Tcb& waiter);
  void JoinPreAcquire(Semaphore& sem, Tcb& t);
  void LeavePreAcquire(Tcb& t);
  void FreezePreAcquirers(Semaphore& sem, Tcb& except);
  void ThawPreAcquirers(Semaphore& sem);
  void HeldAdd(Tcb& t, Semaphore& sem);
  void HeldRemove(Tcb& t, Semaphore& sem);

  // --- Condvar internals (condvar.cc) ---
  Condvar* CondvarPtr(CondvarId id);
  void WakeCondWaiter(Condvar& cv, Tcb& waiter);

  // --- Mailbox / state-message internals (ipc.cc) ---
  Mailbox* MailboxPtr(MailboxId id);
  StateMessageBuffer* SmsgPtr(SmsgId id);
  Duration CopyCost(size_t bytes) const;
  Status RecvCopyStatus(size_t copied, size_t message_size);
  void FinishMailboxRecvWait(Tcb& receiver);
  void DeliverToWaiter(Mailbox& mbox, MboxMessage&& message);
  void AdmitBlockedSender(Mailbox& mbox);
  void FinishStateWrite(Tcb& t);
  void FinishStateRead(Tcb& t);

  // --- Interrupts (irq.cc) ---
  static void IrqTrampoline(void* context, int line);
  void HandleIrq(int line);

  // --- Causal chain tracing ---
  // Emit at a producing endpoint: propagates `carrier`'s token (nullptr or
  // an invalid token mints a fresh origin), records kChainEmit, and returns
  // the token to stamp into the channel. Costs zero virtual time, like any
  // trace record.
  CausalToken ChainEmit(int32_t endpoint, const Tcb* carrier);
  // Consume at the matching endpoint: records kChainConsume with the hop
  // bumped and `consumer` named explicitly (handoffs run in producer or ISR
  // context), then parks the bumped token on the consumer's TCB. Invalid or
  // hop-capped tokens are dropped silently.
  void ChainConsume(int32_t endpoint, CausalToken token, Tcb& consumer);
  // Start()-time resolution of config_.chains name strings to object ids.
  void ResolveChainSpecs();

  Hardware& hw_;
  KernelConfig config_;
  CostModel cost_;
  TraceSink trace_;
  KernelStats stats_;

  // One state block per virtual core; cores_[active_core_] is the core the
  // kernel is currently acting for (0 in ISR/host context).
  std::vector<std::unique_ptr<CoreState>> cores_;
  int active_core_ = 0;

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<Tcb>> threads_;
  std::vector<std::unique_ptr<Semaphore>> semaphores_;
  std::vector<std::unique_ptr<Condvar>> condvars_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<StateMessageBuffer>> smsgs_;
  std::vector<std::unique_ptr<SharedRegion>> regions_;
  std::vector<std::unique_ptr<UserTimer>> user_timers_;

  TimerQueue soft_timers_;
  uint64_t timer_seq_ = 0;
  OneShotTimer oneshot_;

  // Observability sampler (EnableStatsSampling).
  std::unique_ptr<StatsSampler> stats_sampler_;
  SoftTimer stats_sample_timer_;
  Duration stats_sample_period_;

  bool started_ = false;
  bool sem_path_ = false;

  Tcb* irq_threads_[kNumIrqLines] = {};

  // Causal chain tracing: next origin id to mint (0 is the invalid token)
  // and the Start()-resolved chain declarations.
  uint32_t next_chain_origin_ = 1;
  std::vector<ResolvedChain> resolved_chains_;

  // Livelock watchdog.
  Instant watchdog_time_;
  uint64_t watchdog_resumes_ = 0;
};

}  // namespace emeralds

#endif  // SRC_CORE_KERNEL_H_
