// Condition variables with priority-ordered wakeup (Figure 1's
// "Synchronization: Semaphores, Condition Variables").
//
// Wait atomically releases the guarding mutex and blocks; Signal/Broadcast
// move waiters to the mutex — either granting it immediately or contending
// through the normal PI path — so a waiter resumes only once it holds the
// mutex again.

#include "src/core/kernel.h"

namespace emeralds {

Condvar* Kernel::CondvarPtr(CondvarId id) {
  if (!id.valid() || static_cast<size_t>(id.value) >= condvars_.size()) {
    return nullptr;
  }
  return condvars_[id.value].get();
}

Kernel::SyscallOutcome Kernel::SysCondWait(Tcb& t, CondvarId cv_id, SemId mutex_id) {
  EM_ASSERT(&t == cores_[t.core]->current);
  ++stats_.syscalls;
  Charge(ChargeCategory::kSyscall, cost_.syscall);
  Condvar* cv = CondvarPtr(cv_id);
  Semaphore* mutex = SemPtr(mutex_id);
  if (cv == nullptr || mutex == nullptr) {
    t.syscall_status = Status::kBadHandle;
    return {false};
  }
  if (!cv->access.Allows(t.process)) {
    t.syscall_status = Status::kPermissionDenied;
    return {false};
  }
  if (!mutex->binary || mutex->owner != &t) {
    t.syscall_status = Status::kFailedPrecondition;
    return {false};
  }
  Charge(ChargeCategory::kSemaphore, cost_.sem_fixed);

  // Enqueue on the condvar, then release the mutex — atomically from the
  // thread's perspective since the kernel is non-preemptible here.
  t.waiting_condvar = cv_id;
  t.condvar_mutex = mutex_id;
  t.syscall_status = Status::kOk;
  BlockThread(t, BlockReason::kWaitCondvar);
  int visits = 0;
  Tcb* insert_before = nullptr;
  for (Tcb& other : cv->waiters) {
    ++visits;
    if (HigherPriority(t, other)) {
      insert_before = &other;
      break;
    }
  }
  if (insert_before != nullptr) {
    cv->waiters.insert_before(*insert_before, t);
  } else {
    cv->waiters.push_back(t);
  }
  Charge(ChargeCategory::kSemaphore, cost_.waitq_visit * visits);

  {
    ScopedSemPath path(*this);
    ReleaseLocked(t, *mutex);
  }
  return {true};
}

void Kernel::WakeCondWaiter(Condvar& cv, Tcb& waiter) {
  cv.waiters.erase(waiter);
  waiter.waiting_condvar = CondvarId();
  Semaphore* mutex = SemPtr(waiter.condvar_mutex);
  EM_ASSERT(mutex != nullptr);
  ScopedSemPath path(*this);
  if (mutex->owner == nullptr) {
    // Mutex free: grant and wake.
    Charge(ChargeCategory::kSemaphore, cost_.sem_fixed);
    mutex->owner = &waiter;
    mutex->count = 0;
    HeldAdd(waiter, *mutex);
    FreezePreAcquirers(*mutex, waiter);
    waiter.syscall_status = Status::kOk;
    trace_.Record(hw_.now(), TraceEventType::kSemAcquire, waiter.id.value, mutex->id.value);
    MakeReady(waiter);
    return;
  }
  // Mutex held: the waiter contends like a blocked acquirer (stays blocked,
  // donates priority). It resumes holding the mutex when granted.
  Charge(ChargeCategory::kSemaphore, cost_.sem_fixed);
  waiter.block_reason = BlockReason::kWaitSem;
  waiter.blocked_on = mutex;
  EnqueueWaiter(*mutex, waiter);
  DoInheritance(*mutex, waiter);
}

Kernel::SyscallOutcome Kernel::SysCondWake(Tcb& t, CondvarId cv_id, bool broadcast) {
  EM_ASSERT(&t == cores_[t.core]->current);
  ++stats_.syscalls;
  Charge(ChargeCategory::kSyscall, cost_.syscall);
  Condvar* cv = CondvarPtr(cv_id);
  if (cv == nullptr) {
    t.syscall_status = Status::kBadHandle;
    return {false};
  }
  if (!cv->access.Allows(t.process)) {
    t.syscall_status = Status::kPermissionDenied;
    return {false};
  }
  Charge(ChargeCategory::kSemaphore, cost_.sem_fixed);
  if (broadcast) {
    ++cv->broadcasts;
  } else {
    ++cv->signals;
  }

  // One emit per signal/broadcast; every woken waiter consumes it (broadcast
  // is a deliberate one-emit-many-consumes fan-out). A signal that finds no
  // waiter is lost, so nothing is emitted.
  int32_t endpoint = ChainEndpointPack(ChainEndpointKind::kCondvar, cv->id.value);
  CausalToken token;
  do {
    Tcb* waiter = cv->waiters.front();  // insert order is priority order
    if (waiter == nullptr) {
      break;
    }
    if (!token.valid()) {
      token = ChainEmit(endpoint, &t);
    }
    ChainConsume(endpoint, token, *waiter);
    WakeCondWaiter(*cv, *waiter);
  } while (broadcast);

  t.syscall_status = Status::kOk;
  if (need_resched()) {
    t.resume_pending = true;
    return {true};
  }
  return {false};
}

}  // namespace emeralds
