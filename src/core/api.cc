// ThreadApi and awaitable glue: each awaitable traps into the corresponding
// kernel syscall; results are read back from the TCB.

#include "src/core/api.h"

#include "src/core/kernel.h"

namespace emeralds {
namespace internal {

bool ComputeAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysCompute(*tcb, amount).suspend;
}

bool WaitPeriodAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysWaitPeriod(*tcb, next_sem).suspend;
}

bool AcquireAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysAcquire(*tcb, sem).suspend;
}
Status AcquireAwait::await_resume() const noexcept { return tcb->syscall_status; }

bool ReleaseAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysRelease(*tcb, sem).suspend;
}
Status ReleaseAwait::await_resume() const noexcept { return tcb->syscall_status; }

bool CondWaitAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysCondWait(*tcb, condvar, mutex).suspend;
}
Status CondWaitAwait::await_resume() const noexcept { return tcb->syscall_status; }

bool CondWakeAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysCondWake(*tcb, condvar, broadcast).suspend;
}
Status CondWakeAwait::await_resume() const noexcept { return tcb->syscall_status; }

bool SendAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysSend(*tcb, mailbox, data, wait).suspend;
}
Status SendAwait::await_resume() const noexcept { return tcb->syscall_status; }

bool RecvAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysRecv(*tcb, mailbox, buffer, timeout, next_sem).suspend;
}
RecvResult RecvAwait::await_resume() const noexcept {
  return RecvResult{tcb->syscall_status, tcb->syscall_length};
}

bool StateWriteAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysStateWrite(*tcb, smsg, data).suspend;
}
Status StateWriteAwait::await_resume() const noexcept { return tcb->syscall_status; }

bool StateReadAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysStateRead(*tcb, smsg, buffer).suspend;
}
StateReadResult StateReadAwait::await_resume() const noexcept {
  return StateReadResult{tcb->syscall_status, tcb->syscall_sequence, tcb->syscall_retries};
}

bool SleepAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysSleep(*tcb, amount, next_sem).suspend;
}

bool WaitIrqAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysWaitIrq(*tcb, line, next_sem).suspend;
}
Status WaitIrqAwait::await_resume() const noexcept { return tcb->syscall_status; }

bool YieldAwait::await_suspend(std::coroutine_handle<>) {
  return kernel->SysYield(*tcb).suspend;
}

}  // namespace internal

internal::ComputeAwait ThreadApi::Compute(Duration amount) const {
  internal::ComputeAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.amount = amount;
  return a;
}

internal::WaitPeriodAwait ThreadApi::WaitNextPeriod(SemId next_sem) const {
  internal::WaitPeriodAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.next_sem = next_sem;
  return a;
}

internal::AcquireAwait ThreadApi::Acquire(SemId sem) const {
  internal::AcquireAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.sem = sem;
  return a;
}

internal::ReleaseAwait ThreadApi::Release(SemId sem) const {
  internal::ReleaseAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.sem = sem;
  return a;
}

internal::CondWaitAwait ThreadApi::Wait(CondvarId condvar, SemId mutex) const {
  internal::CondWaitAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.condvar = condvar;
  a.mutex = mutex;
  return a;
}

internal::CondWakeAwait ThreadApi::Signal(CondvarId condvar) const {
  internal::CondWakeAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.condvar = condvar;
  a.broadcast = false;
  return a;
}

internal::CondWakeAwait ThreadApi::Broadcast(CondvarId condvar) const {
  internal::CondWakeAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.condvar = condvar;
  a.broadcast = true;
  return a;
}

internal::SendAwait ThreadApi::Send(MailboxId mailbox, std::span<const uint8_t> data) const {
  internal::SendAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.mailbox = mailbox;
  a.data = data;
  a.wait = true;
  return a;
}

internal::SendAwait ThreadApi::TrySend(MailboxId mailbox, std::span<const uint8_t> data) const {
  internal::SendAwait a = Send(mailbox, data);
  a.wait = false;
  return a;
}

internal::RecvAwait ThreadApi::Recv(MailboxId mailbox, std::span<uint8_t> buffer,
                                    Duration timeout, SemId next_sem) const {
  internal::RecvAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.mailbox = mailbox;
  a.buffer = buffer;
  a.timeout = timeout;
  a.next_sem = next_sem;
  return a;
}

internal::StateWriteAwait ThreadApi::StateWrite(SmsgId smsg,
                                                std::span<const uint8_t> data) const {
  internal::StateWriteAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.smsg = smsg;
  a.data = data;
  return a;
}

internal::StateReadAwait ThreadApi::StateRead(SmsgId smsg, std::span<uint8_t> buffer) const {
  internal::StateReadAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.smsg = smsg;
  a.buffer = buffer;
  return a;
}

internal::SleepAwait ThreadApi::Sleep(Duration amount, SemId next_sem) const {
  internal::SleepAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.amount = amount;
  a.next_sem = next_sem;
  return a;
}

internal::WaitIrqAwait ThreadApi::WaitIrq(int line, SemId next_sem) const {
  internal::WaitIrqAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  a.line = line;
  a.next_sem = next_sem;
  return a;
}

internal::YieldAwait ThreadApi::Yield() const {
  internal::YieldAwait a;
  a.kernel = kernel_;
  a.tcb = tcb_;
  return a;
}

Instant ThreadApi::now() const { return kernel_->now(); }
ThreadId ThreadApi::id() const { return tcb_->id; }
uint64_t ThreadApi::job_number() const { return tcb_->job_number; }
Instant ThreadApi::job_deadline() const { return tcb_->job_deadline; }

std::span<uint8_t> ThreadApi::RegionData(RegionId region, bool write) const {
  return kernel_->RegionDataFor(tcb_->process, region, write);
}

}  // namespace emeralds
