// Kernel configuration.

#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/static_vector.h"
#include "src/base/time.h"
#include "src/core/api.h"
#include "src/core/ids.h"
#include "src/core/thread_body.h"
#include "src/core/timer.h"
#include "src/hal/cost_model.h"

namespace emeralds {

// Maximum number of scheduler bands (CSD queues). The paper finds diminishing
// returns past three queues (Section 5.6); eight leaves room for the CSD-x
// sweep ablation.
inline constexpr int kMaxBands = 8;

// Maximum number of virtual cores. Partitioned SMP: each thread is pinned to
// one core at creation and never migrates; cross-core wakes are priced as
// virtual IPIs (CycleBucket::kIpi).
inline constexpr int kMaxCores = 8;

// Fixed-priority rank assignment for threads that ask for automatic ranking
// (Section 5.3: "or any fixed-priority scheduler such as deadline-monotonic
// [18], but for simplicity, we assume RM").
enum class FpRankPolicy {
  kRateMonotonic,      // shorter period = higher priority
  kDeadlineMonotonic,  // shorter relative deadline = higher priority
};

// Semaphore operating mode (Section 6): the conventional implementation
// versus EMERALDS's context-switch-eliminating scheme with optimized priority
// inheritance. Both are first-class so benches can compare them.
enum class SemMode {
  kStandard,
  kCse,
};

// Scheduler construction shorthand.
struct SchedulerSpec {
  // Band queue kinds, highest-priority band first. CSD requires every DP band
  // to be kEdfList and the final band to be kRmList (or kRmHeap).
  StaticVector<QueueKind, kMaxBands> bands;

  static SchedulerSpec Edf() {
    SchedulerSpec s;
    s.bands.push_back(QueueKind::kEdfList);
    return s;
  }
  static SchedulerSpec Rm() {
    SchedulerSpec s;
    s.bands.push_back(QueueKind::kRmList);
    return s;
  }
  static SchedulerSpec RmHeap() {
    SchedulerSpec s;
    s.bands.push_back(QueueKind::kRmHeap);
    return s;
  }
  // CSD-x: (x-1) dynamic-priority EDF queues over one fixed-priority queue.
  static SchedulerSpec Csd(int num_queues) {
    EM_ASSERT_MSG(num_queues >= 1 && num_queues <= kMaxBands, "CSD-%d unsupported", num_queues);
    SchedulerSpec s;
    for (int i = 0; i + 1 < num_queues; ++i) {
      s.bands.push_back(QueueKind::kEdfList);
    }
    s.bands.push_back(QueueKind::kRmList);
    return s;
  }
};

// --- Causal event chains -------------------------------------------------
//
// A chain names the dataflow path whose end-to-end latency is the real
// schedulability deliverable for sensor→compute→actuate pipelines: an origin
// channel, then alternating (channel consumed, consuming task) stages. The
// channel string is "<kind>:<name>" where kind is one of irq / release /
// sem / cv / mbox / smsg; irq channels name the line number ("irq:3"),
// release channels name the periodic task whose job release starts the
// chain, and the rest name the kernel object. Specs are declared up front in
// KernelConfig and resolved to object ids at Kernel::Start(); a spec whose
// names don't resolve is reported unresolved in the chains report rather
// than failing the boot.
struct ChainStageSpec {
  std::string channel;  // "<kind>:<name>", e.g. "smsg:pose"
  std::string task;     // consuming thread's name, e.g. "actuator"
};

struct ChainSpec {
  std::string name;
  // End-to-end deadline for one chain instance (origin emit to final
  // consume). Zero disables overrun checking for this chain.
  Duration deadline;
  std::vector<ChainStageSpec> stages;
};

// A spec after name resolution: each stage holds the packed trace endpoint
// (ChainEndpointPack) and the consuming thread's id (-1 = any consumer).
struct ResolvedChainStage {
  int32_t endpoint = 0;
  int consumer_tid = -1;
};

struct ResolvedChain {
  std::string name;
  Duration deadline;
  bool resolved = false;  // false: some channel/task name didn't resolve
  std::vector<ResolvedChainStage> stages;
};

struct KernelConfig {
  SchedulerSpec scheduler = SchedulerSpec::Edf();

  // Number of virtual cores (partitioned scheduling, no migration). Each core
  // gets its own scheduler state block built from `scheduler`; threads are
  // pinned via ThreadParams::core. 1 = the paper's single-CPU EMERALDS.
  int num_cores = 1;
  CostModel cost_model = CostModel::MC68040_25MHz();
  SemMode default_sem_mode = SemMode::kCse;
  FpRankPolicy fp_rank_policy = FpRankPolicy::kRateMonotonic;

  // Object-pool capacities (allocated once at kernel construction).
  size_t max_threads = 128;
  size_t max_processes = 16;
  size_t max_semaphores = 64;
  size_t max_condvars = 32;
  size_t max_mailboxes = 32;
  size_t max_state_messages = 64;
  size_t max_regions = 16;

  // Trace ring capacity (0 disables event retention; counters still work).
  size_t trace_capacity = 4096;

  // Record a kOverheadSpan trace event at the end of every non-user,
  // non-idle clock advance. Costs ring space (roughly 3-4x event volume) but
  // lets the deadline-miss postmortem engine attribute kernel overhead
  // (IRQ / timer service / scheduler / syscall) exactly; without spans the
  // lateness ledger still telescopes but lumps overhead into own-execution.
  bool trace_overhead_spans = true;

  // Pending-timer container for the software-timer service. Both order
  // timers identically, so runs are bit-identical under either; the sorted
  // list is the reference implementation for differential testing.
  TimerQueueImpl timer_queue = TimerQueueImpl::kWheel;

  // Declared causal event chains (resolved against object/thread names at
  // Start(); see ChainSpec above). Token propagation itself is always on —
  // the specs only drive the chain-latency reports and SLO checks.
  std::vector<ChainSpec> chains;

  // Deadline-headroom monitor: a job whose predicted completion (release +
  // per-job cost EWMA) leaves less slack than this margin raises a
  // kHeadroomLow trace instant and bumps the headroom counters. Zero flags
  // only predicted misses (negative slack).
  Duration headroom_low_margin;

  // Run the scheduler's structural invariant checks after every reschedule
  // (panics on violation). For tests; costs host time, no virtual time.
  bool debug_validate = false;
};

using ThreadBodyFactory = std::function<ThreadBody(ThreadApi)>;

struct ThreadParams {
  const char* name = "thread";
  ProcessId process = kKernelProcess;
  ThreadBodyFactory body;

  // Zero period => aperiodic (released once at Start(), never re-released).
  Duration period;
  // Zero => relative deadline equals the period (the paper's assumption).
  Duration relative_deadline;
  // First release offset from Start(); aperiodic threads ignore it.
  Duration first_release;

  // Scheduler band (CSD queue) this thread is assigned to; -1 places it in
  // the lowest-priority (fixed-priority) band. The CSD partition search in
  // src/analysis/ produces these assignments.
  int band = -1;

  // Core this thread is pinned to for its whole lifetime (partitioned SMP,
  // no migration). Must be in [0, KernelConfig::num_cores).
  int core = 0;

  // Fixed-priority rank; -1 lets the kernel assign rate-monotonic ranks
  // (shorter period = higher priority) at Start().
  int rm_rank = -1;

  // Informational worst-case execution time (used by traces/examples only).
  Duration wcet;
};

}  // namespace emeralds

#endif  // SRC_CORE_CONFIG_H_
