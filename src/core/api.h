// The system-call interface seen by application threads.
//
// A thread body receives a ThreadApi by value and interacts with the kernel
// exclusively through `co_await api.X(...)`. Each awaitable traps into the
// kernel (charging the syscall cost), performs the operation, and suspends the
// coroutine when the thread blocks or must be preempted.
//
// Blocking calls take an optional `next_sem` parameter — the paper's
// context-switch-elimination hook (Section 6.2): the identifier of the
// semaphore the thread will acquire right after the blocking call returns.
// Application code normally leaves it at kNoSem and lets the script
// instrumenter (src/script/) fill it in, exactly like the paper's code parser.

#ifndef SRC_CORE_API_H_
#define SRC_CORE_API_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <span>

#include "src/base/status.h"
#include "src/base/time.h"
#include "src/core/ids.h"

namespace emeralds {

class Kernel;
struct Tcb;

struct RecvResult {
  Status status = Status::kOk;
  size_t length = 0;
};

struct StateReadResult {
  Status status = Status::kOk;
  uint64_t sequence = 0;  // writer's commit sequence number of the snapshot
  int retries = 0;        // times the reader detected an overwrite and retried
};

namespace internal {

// Common base: awaitables never complete eagerly (await_suspend decides).
struct AwaitBase {
  Kernel* kernel = nullptr;
  Tcb* tcb = nullptr;

  bool await_ready() const noexcept { return false; }
};

struct ComputeAwait : AwaitBase {
  Duration amount;
  bool await_suspend(std::coroutine_handle<>);
  void await_resume() const noexcept {}
};

struct WaitPeriodAwait : AwaitBase {
  SemId next_sem;
  bool await_suspend(std::coroutine_handle<>);
  void await_resume() const noexcept {}
};

struct AcquireAwait : AwaitBase {
  SemId sem;
  bool await_suspend(std::coroutine_handle<>);
  Status await_resume() const noexcept;
};

struct ReleaseAwait : AwaitBase {
  SemId sem;
  bool await_suspend(std::coroutine_handle<>);
  Status await_resume() const noexcept;
};

struct CondWaitAwait : AwaitBase {
  CondvarId condvar;
  SemId mutex;
  bool await_suspend(std::coroutine_handle<>);
  Status await_resume() const noexcept;
};

struct CondWakeAwait : AwaitBase {
  CondvarId condvar;
  bool broadcast = false;
  bool await_suspend(std::coroutine_handle<>);
  Status await_resume() const noexcept;
};

struct SendAwait : AwaitBase {
  MailboxId mailbox;
  std::span<const uint8_t> data;
  bool wait = true;  // false: return kWouldBlock instead of blocking when full
  bool await_suspend(std::coroutine_handle<>);
  Status await_resume() const noexcept;
};

struct RecvAwait : AwaitBase {
  MailboxId mailbox;
  std::span<uint8_t> buffer;
  Duration timeout;  // <= 0: wait forever
  SemId next_sem;
  bool await_suspend(std::coroutine_handle<>);
  RecvResult await_resume() const noexcept;
};

struct StateWriteAwait : AwaitBase {
  SmsgId smsg;
  std::span<const uint8_t> data;
  bool await_suspend(std::coroutine_handle<>);
  Status await_resume() const noexcept;
};

struct StateReadAwait : AwaitBase {
  SmsgId smsg;
  std::span<uint8_t> buffer;
  bool await_suspend(std::coroutine_handle<>);
  StateReadResult await_resume() const noexcept;
};

struct SleepAwait : AwaitBase {
  Duration amount;
  SemId next_sem;
  bool await_suspend(std::coroutine_handle<>);
  void await_resume() const noexcept {}
};

struct WaitIrqAwait : AwaitBase {
  int line = -1;
  SemId next_sem;
  bool await_suspend(std::coroutine_handle<>);
  Status await_resume() const noexcept;
};

struct YieldAwait : AwaitBase {
  bool await_suspend(std::coroutine_handle<>);
  void await_resume() const noexcept {}
};

}  // namespace internal

class ThreadApi {
 public:
  ThreadApi(Kernel* kernel, Tcb* tcb) : kernel_(kernel), tcb_(tcb) {}

  // Consumes `amount` of CPU time (preemptible).
  internal::ComputeAwait Compute(Duration amount) const;

  // Completes the current job (recording the deadline outcome) and blocks
  // until the next periodic release. `next_sem` is the CSE hint.
  internal::WaitPeriodAwait WaitNextPeriod(SemId next_sem = kNoSem) const;

  // Semaphores (priority inheritance per the kernel/semaphore mode).
  internal::AcquireAwait Acquire(SemId sem) const;
  internal::ReleaseAwait Release(SemId sem) const;

  // Condition variables. Wait atomically releases `mutex` and re-acquires it
  // before returning.
  internal::CondWaitAwait Wait(CondvarId condvar, SemId mutex) const;
  internal::CondWakeAwait Signal(CondvarId condvar) const;
  internal::CondWakeAwait Broadcast(CondvarId condvar) const;

  // Mailbox message passing (kernel-copied, blocking).
  internal::SendAwait Send(MailboxId mailbox, std::span<const uint8_t> data) const;
  internal::SendAwait TrySend(MailboxId mailbox, std::span<const uint8_t> data) const;
  internal::RecvAwait Recv(MailboxId mailbox, std::span<uint8_t> buffer,
                           Duration timeout = Duration(), SemId next_sem = kNoSem) const;

  // State messages (single-writer multi-reader, non-blocking, user-level).
  internal::StateWriteAwait StateWrite(SmsgId smsg, std::span<const uint8_t> data) const;
  internal::StateReadAwait StateRead(SmsgId smsg, std::span<uint8_t> buffer) const;

  internal::SleepAwait Sleep(Duration amount, SemId next_sem = kNoSem) const;

  // Blocks until the bound IRQ line fires (user-level device drivers).
  internal::WaitIrqAwait WaitIrq(int line, SemId next_sem = kNoSem) const;

  // Re-runs scheduling without blocking.
  internal::YieldAwait Yield() const;

  // --- Introspection (no kernel trap, no cost) ---
  Instant now() const;
  ThreadId id() const;
  uint64_t job_number() const;
  Instant job_deadline() const;
  // Shared-memory access; returns an empty span unless the thread's process
  // mapped the region (writable if `write`).
  std::span<uint8_t> RegionData(RegionId region, bool write) const;

 private:
  Kernel* kernel_;
  Tcb* tcb_;
};

}  // namespace emeralds

#endif  // SRC_CORE_API_H_
