// Bridges the analysis-side TaskSet model onto a live kernel: spawns one
// periodic thread per task (each job consumes its WCET of CPU), with optional
// CSD queue assignments from a partition produced by the off-line search.
//
// This is the piece a deployment uses after ComputeBreakdown /
// BestCsdPartition: take the task set and the winning allocation, stand the
// node up, and let the per-thread deadline statistics confirm the analysis.

#ifndef SRC_CORE_TASKSET_RUNNER_H_
#define SRC_CORE_TASKSET_RUNNER_H_

#include <vector>

#include "src/core/kernel.h"
#include "src/workload/workload.h"

namespace emeralds {

// Expands a contiguous-prefix CSD partition (sizes per queue, DP first) into
// a per-task band list. Tasks must be sorted shortest-period-first, matching
// the partition's construction.
std::vector<int> BandsFromPartition(const std::vector<int>& partition);

// Creates one thread per task. `bands[i]` selects task i's scheduler band
// (empty = every task in the default band). Threads run
// Compute(wcet); WaitNextPeriod() forever. Must be called before
// kernel.Start(). Returns the thread ids in task order.
std::vector<ThreadId> SpawnTaskSet(Kernel& kernel, const TaskSet& set,
                                   const std::vector<int>& bands = {});

// Summary of a finished (or paused) run for the spawned threads.
struct TaskSetRunStats {
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  Duration worst_response;
};

TaskSetRunStats CollectRunStats(const Kernel& kernel, const std::vector<ThreadId>& ids);

// Per-task row of the same summary, in `ids` order: what the observability
// report (src/obs/obs_report.h) embeds so trace-derived metrics can be
// reconciled against the kernel's own per-thread counters.
struct TaskRunRow {
  ThreadId id;
  char name[24] = {};
  Duration period;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  Duration max_response;
  Duration avg_response;  // total_response / jobs_completed (zero when idle)
  Duration cpu_time;
  // Cycle-attribution / headroom columns (see Tcb). overhead_cycles is the
  // per-task ledger total minus its kUser share: kernel time billed to the
  // thread.
  Duration user_cycles;
  Duration overhead_cycles;
  Duration job_cost_ewma;
  Duration headroom_min;  // meaningful only when headroom_seen
  bool headroom_seen = false;
  uint64_t headroom_low_events = 0;
};

std::vector<TaskRunRow> CollectPerTaskStats(const Kernel& kernel,
                                            const std::vector<ThreadId>& ids);

}  // namespace emeralds

#endif  // SRC_CORE_TASKSET_RUNNER_H_
