// Interrupt handling and user-level device-driver support (Figure 1).
//
// EMERALDS keeps interrupt handlers in the kernel minimal: the ISR stub
// acknowledges the line and wakes the user-level driver thread bound to it.
// The driver thread does the real device work at its scheduled priority.

#include "src/core/kernel.h"

namespace emeralds {

Status Kernel::BindIrqThread(ThreadId thread, int line) {
  if (line < 0 || line >= kNumIrqLines || line == kIrqTimer) {
    return Status::kInvalidArgument;
  }
  if (!thread.valid() || static_cast<size_t>(thread.value) >= threads_.size()) {
    return Status::kBadHandle;
  }
  irq_threads_[line] = threads_[thread.value].get();
  hw_.irq().Attach(line, &Kernel::IrqTrampoline, this);
  return Status::kOk;
}

void Kernel::IrqTrampoline(void* context, int line) {
  static_cast<Kernel*>(context)->HandleIrq(line);
}

void Kernel::HandleIrq(int line) {
  if (line == kIrqTimer) {
    TimerIsr();
    return;
  }
  Charge(ChargeCategory::kInterrupt, cost_.interrupt_entry);
  ++stats_.interrupts;
  trace_.Record(hw_.now(), TraceEventType::kIrq, line, 0);
  Tcb* driver = irq_threads_[line];
  if (driver != nullptr) {
    // Every dispatched interrupt is a chain origin, minted in ISR context.
    int32_t endpoint = ChainEndpointPack(ChainEndpointKind::kIrq, line);
    CausalToken token = ChainEmit(endpoint, nullptr);
    if (driver->state == ThreadState::kBlocked &&
        driver->block_reason == BlockReason::kWaitIrq && driver->waiting_irq_line == line) {
      driver->waiting_irq_line = -1;
      driver->syscall_status = Status::kOk;
      ChainConsume(endpoint, token, *driver);
      WakeThread(*driver);
    } else {
      // Latch the interrupt; the next WaitIrq completes immediately and
      // consumes the latched token then.
      ++driver->irq_pending_count;
      driver->irq_latched_token = token;
    }
  }
  Charge(ChargeCategory::kInterrupt, cost_.interrupt_exit);
  // ISRs run on the boot core; a woken driver pinned elsewhere already paid
  // its IPI through WakeThread -> MakeReady -> NotifyCore.
  cores_[active_core_]->need_resched = true;
}

Kernel::SyscallOutcome Kernel::SysWaitIrq(Tcb& t, int line, SemId next_sem) {
  EM_ASSERT(&t == cores_[t.core]->current);
  ++stats_.syscalls;
  Charge(ChargeCategory::kSyscall, cost_.syscall);
  if (line < 0 || line >= kNumIrqLines) {
    t.syscall_status = Status::kInvalidArgument;
    return {false};
  }
  if (irq_threads_[line] != &t) {
    t.syscall_status = Status::kPermissionDenied;  // not the bound driver
    return {false};
  }
  if (t.irq_pending_count > 0) {
    --t.irq_pending_count;
    t.syscall_status = Status::kOk;
    // An IRQ-storm burst latches several fires but only the newest token (a
    // single overwritten slot, like the counting-sem one); consume it once
    // and let further drains of the same burst run token-free.
    ChainConsume(ChainEndpointPack(ChainEndpointKind::kIrq, line), t.irq_latched_token, t);
    t.irq_latched_token.clear();
    if (need_resched()) {
      t.resume_pending = true;
      return {true};
    }
    return {false};
  }
  t.waiting_irq_line = line;
  t.wakeup_hint = next_sem;
  t.syscall_status = Status::kOk;
  BlockThread(t, BlockReason::kWaitIrq);
  return {true};
}

}  // namespace emeralds
