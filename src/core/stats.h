// Kernel accounting: where virtual time went and what the kernel did.

#ifndef SRC_CORE_STATS_H_
#define SRC_CORE_STATS_H_

#include <cstdint>
#include <cstdio>

#include "src/base/ring_buffer.h"
#include "src/base/time.h"
#include "src/hal/cost_model.h"

namespace emeralds {

// Category a charge is attributed to. kSemPath additionally accumulates for
// any charge made while the kernel is on a semaphore-induced path (acquire,
// release, PI, CSE checks, and the context switches they trigger) — that is
// the quantity Figure 11 plots.
enum class ChargeCategory : int {
  kScheduling = 0,    // queue t_b / t_u / t_s and CSD queue parsing
  kContextSwitch = 1,
  kSyscall = 2,       // user/kernel transitions
  kSemaphore = 3,     // semaphore bookkeeping incl. CSE checks
  kPi = 4,            // priority-inheritance work
  kIpc = 5,           // mailbox + state-message fixed costs and copies
  kInterrupt = 6,     // interrupt entry/exit
  kTimerSvc = 7,      // software-timer dispatch
};
inline constexpr int kNumChargeCategories = 8;

const char* ChargeCategoryToString(ChargeCategory category);

struct KernelStats {
  // Virtual time by destination.
  Duration charged[kNumChargeCategories];
  Duration sem_path_time;  // see ChargeCategory comment
  Duration compute_time;   // application Compute() execution
  Duration idle_time;

  // Scheduler activity.
  uint64_t context_switches = 0;
  uint64_t selections = 0;
  uint64_t queue_op_count[kNumQueueKinds][kNumQueueOps] = {};
  uint64_t queue_op_units[kNumQueueKinds][kNumQueueOps] = {};

  // Thread / job activity.
  uint64_t jobs_released = 0;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  uint64_t syscalls = 0;

  // Semaphores.
  uint64_t sem_acquires = 0;
  uint64_t sem_contended = 0;
  uint64_t sem_handoffs = 0;
  uint64_t pi_inherits = 0;
  uint64_t pi_swaps = 0;       // optimized place-holder swaps
  uint64_t pi_reinserts = 0;   // un-optimized sorted re-inserts
  uint64_t cse_early_pi = 0;   // unblocks converted to early PI (Fig. 8)
  uint64_t cse_grants = 0;     // locks handed over before acquire_sem() ran
  uint64_t cse_switches_saved = 0;
  uint64_t cse_hint_misses = 0;  // hint named a semaphore never acquired
  uint64_t preacquire_freezes = 0;
  uint64_t pi_chain_limit_hits = 0;  // acquires refused / walks cut at the depth cap

  // IPC.
  uint64_t mailbox_sends = 0;
  uint64_t mailbox_receives = 0;
  uint64_t mailbox_truncations = 0;  // receives that cut the payload (kTruncated)
  uint64_t smsg_writes = 0;
  uint64_t smsg_reads = 0;
  uint64_t smsg_read_retries = 0;

  // Interrupts / timers.
  uint64_t interrupts = 0;
  uint64_t timer_dispatches = 0;

  Duration total_charged() const {
    Duration total;
    for (const Duration& d : charged) {
      total += d;
    }
    return total;
  }
};

// Writes a human-readable summary (charge breakdown, scheduler and semaphore
// activity) to `out` (default stdout); examples, debugging sessions, and
// tests that capture the output use it.
void PrintKernelStats(const KernelStats& stats, std::FILE* out = stdout);

// --- Periodic snapshots (the time-series half of the observability layer) ---

// One sampling interval's worth of kernel activity: every field is the
// *delta* since the previous snapshot, so a ring of these is a time series of
// charge-category rates without storing full KernelStats copies (the
// small-memory trade: ~1/3 the size, and rates are what the consumer wants).
struct StatsDelta {
  Instant time;  // sample instant (virtual clock); interval is (prev, time]
  Duration charged[kNumChargeCategories];
  Duration sem_path_time;
  Duration compute_time;
  Duration idle_time;
  uint64_t context_switches = 0;
  uint64_t jobs_released = 0;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  uint64_t sem_acquires = 0;
  uint64_t sem_contended = 0;
  uint64_t pi_inherits = 0;
  uint64_t cse_switches_saved = 0;
  uint64_t interrupts = 0;
  uint64_t timer_dispatches = 0;
};

// Bounded ring of periodic StatsDelta samples. The kernel drives Sample()
// from a software timer when EnableStatsSampling() was called; storage is
// allocated once at construction, and when the ring fills the oldest interval
// is evicted (dropped() counts evictions, mirroring TraceSink).
class StatsSampler {
 public:
  explicit StatsSampler(size_t capacity) : samples_(capacity > 0 ? capacity : 1) {}

  // Records the interval (last sample, now] as a delta of `current` against
  // the previous cumulative snapshot.
  void Sample(Instant now, const KernelStats& current);

  size_t size() const { return samples_.size(); }
  const StatsDelta& at(size_t index) const { return samples_.at(index); }
  uint64_t dropped() const { return dropped_; }

  // Re-baselines the cumulative reference so the next delta starts from
  // `current` (Kernel::ResetChargeAccounting zeroes the charge Durations,
  // which would otherwise make the next interval's deltas negative).
  void Rebase(const KernelStats& current) { last_ = current; }

 private:
  RingBuffer<StatsDelta> samples_;
  KernelStats last_;  // cumulative counters at the previous sample
  uint64_t dropped_ = 0;
};

}  // namespace emeralds

#endif  // SRC_CORE_STATS_H_
