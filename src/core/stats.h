// Kernel accounting: where virtual time went and what the kernel did.

#ifndef SRC_CORE_STATS_H_
#define SRC_CORE_STATS_H_

#include <cstdint>
#include <cstdio>

#include "src/base/log2_histogram.h"
#include "src/base/ring_buffer.h"
#include "src/base/time.h"
#include "src/hal/cost_model.h"

namespace emeralds {

// Category a charge is attributed to. kSemPath additionally accumulates for
// any charge made while the kernel is on a semaphore-induced path (acquire,
// release, PI, CSE checks, and the context switches they trigger) — that is
// the quantity Figure 11 plots.
enum class ChargeCategory : int {
  kScheduling = 0,    // queue t_b / t_u / t_s and CSD queue parsing
  kContextSwitch = 1,
  kSyscall = 2,       // user/kernel transitions
  kSemaphore = 3,     // semaphore bookkeeping incl. CSE checks
  kPi = 4,            // priority-inheritance work
  kIpc = 5,           // mailbox + state-message fixed costs and copies
  kInterrupt = 6,     // interrupt entry/exit
  kTimerSvc = 7,      // software-timer dispatch
  kStatsObs = 8,      // stats sampling / observability overhead
};
inline constexpr int kNumChargeCategories = 9;

const char* ChargeCategoryToString(ChargeCategory category);

// The attribution bucket a plain Charge(category, ...) lands in. Queue
// operations are finer-grained (per QueueOp, via CycleBucketForQueueOp); the
// only kScheduling charges left on this path are CSD queue parsing.
constexpr CycleBucket DefaultCycleBucket(ChargeCategory category) {
  switch (category) {
    case ChargeCategory::kScheduling:
      return CycleBucket::kSchedParse;
    case ChargeCategory::kContextSwitch:
      return CycleBucket::kContextSwitch;
    case ChargeCategory::kSyscall:
      return CycleBucket::kSyscall;
    case ChargeCategory::kSemaphore:
      return CycleBucket::kSemaphore;
    case ChargeCategory::kPi:
      return CycleBucket::kPi;
    case ChargeCategory::kIpc:
      return CycleBucket::kIpc;
    case ChargeCategory::kInterrupt:
      return CycleBucket::kIrq;
    case ChargeCategory::kTimerSvc:
      return CycleBucket::kTimerSvc;
    case ChargeCategory::kStatsObs:
      return CycleBucket::kStatsObs;
  }
  return CycleBucket::kUnattributed;
}

// Mirror of config.h's kMaxBands for the per-band scheduler-cycle table
// (stats.h sits below config.h in the include order; kernel.cc
// static_asserts the two stay equal).
inline constexpr int kMaxStatBands = 8;

// Mirror of config.h's kMaxCores for the per-core cycle ledgers (same
// layering reason; kernel.cc static_asserts the two stay equal).
inline constexpr int kMaxStatCores = 8;

struct KernelStats {
  // Virtual time by destination.
  Duration charged[kNumChargeCategories];
  Duration sem_path_time;  // see ChargeCategory comment
  Duration compute_time;   // application Compute() execution
  Duration idle_time;

  // Cycle-attribution ledger: every clock advance the kernel makes lands in
  // exactly one bucket. Windowed — ResetChargeAccounting zeroes it and
  // re-bases cycles_epoch — so the conservation invariant is
  //   cycle_total() == now - cycles_epoch, exact to the tick.
  CycleLedger cycles;
  Instant cycles_epoch;  // set at kernel construction and on charge resets
  // Per-core split of the same ledger: each core's buckets sum to the elapsed
  // window (now - cycles_epoch) individually, and the per-core ledgers sum to
  // `cycles`. At num_cores=1, core_cycles[0] mirrors `cycles` exactly.
  int num_cores = 1;
  CycleLedger core_cycles[kMaxStatCores];
  // Scheduler queue time split per CSD band (DP1/DP2/.../FP) and QueueOp —
  // the runtime form of the paper's Figure 3-5 breakdowns.
  Duration sched_band_cycles[kMaxStatBands][kNumQueueOps] = {};

  // Scheduler activity.
  uint64_t context_switches = 0;
  uint64_t selections = 0;
  uint64_t queue_op_count[kNumQueueKinds][kNumQueueOps] = {};
  uint64_t queue_op_units[kNumQueueKinds][kNumQueueOps] = {};

  // Thread / job activity.
  uint64_t jobs_released = 0;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  uint64_t syscalls = 0;

  // Semaphores.
  uint64_t sem_acquires = 0;
  uint64_t sem_contended = 0;
  uint64_t sem_handoffs = 0;
  uint64_t pi_inherits = 0;
  uint64_t pi_swaps = 0;       // optimized place-holder swaps
  uint64_t pi_reinserts = 0;   // un-optimized sorted re-inserts
  uint64_t cse_early_pi = 0;   // unblocks converted to early PI (Fig. 8)
  uint64_t cse_grants = 0;     // locks handed over before acquire_sem() ran
  uint64_t cse_switches_saved = 0;
  uint64_t cse_hint_misses = 0;  // hint named a semaphore never acquired
  uint64_t preacquire_freezes = 0;
  uint64_t pi_chain_limit_hits = 0;  // acquires refused / walks cut at the depth cap

  // IPC.
  uint64_t mailbox_sends = 0;
  uint64_t mailbox_receives = 0;
  uint64_t mailbox_truncations = 0;  // receives that cut the payload (kTruncated)
  uint64_t smsg_writes = 0;
  uint64_t smsg_reads = 0;
  uint64_t smsg_read_retries = 0;

  // Interrupts / timers.
  uint64_t interrupts = 0;
  uint64_t timer_dispatches = 0;

  // SMP: cross-core wakes that paid the virtual-IPI cost, and chain tokens
  // dropped at the hop cap (degraded to counted orphans, not violations).
  uint64_t ipis = 0;
  uint64_t chain_hop_saturations = 0;

  // Causal chain tracing: kChainEmit / kChainConsume events recorded, and
  // origin tokens minted. Reconciled against the trace by obs_report.
  uint64_t chain_emits = 0;
  uint64_t chain_consumes = 0;
  uint64_t chain_origins = 0;

  // Deadline-headroom monitor: jobs whose predicted completion (release time
  // + per-job cost EWMA) left less slack than the configured margin.
  uint64_t headroom_low_events = 0;

  // Streaming-telemetry instrumentation (zero virtual cost: updated inline
  // at events the kernel already pays for, never traced, and kept out of the
  // fleet digest's explicit counter list).
  //
  // chain_e2e_hist records kernel-observed end-to-end chain latency: the
  // final-stage consume instant minus the token's mint instant, for every
  // consume that lands on the last stage of a resolved chain spec. It can
  // differ slightly from the offline analyzer's reconstruction (hop-cap
  // saturation, trace truncation) — the analyzer stays the oracle; this is
  // the always-on streaming view. chain_e2e_overruns counts those e2e
  // latencies that exceeded the chain's deadline.
  uint64_t chain_e2e_overruns = 0;
  // Snapshot ring overwrites: sampling outpaced the reader and an unread
  // StatsDelta was evicted (satellite fix — previously silent).
  uint64_t stats_snapshot_drops = 0;
  Log2Histogram response_hist;   // job response times (completion - release)
  Log2Histogram headroom_hist;   // per-job deadline headroom at completion
  Log2Histogram chain_e2e_hist;  // kernel-observed chain end-to-end latency

  Duration cycle_total() const { return cycles.total(); }

  Duration total_charged() const {
    Duration total;
    for (const Duration& d : charged) {
      total += d;
    }
    return total;
  }
};

// Writes a human-readable summary (charge breakdown, cycle ledger, scheduler
// and semaphore activity) to `out` (default stdout); examples, debugging
// sessions, and tests that capture the output use it.
void PrintKernelStats(const KernelStats& stats, std::FILE* out = stdout);

// --- Conservation invariant ---

// The hard invariant behind the ledger: between cycles_epoch and `now`, every
// virtual tick the kernel spent is in exactly one bucket, so the bucket sum
// equals elapsed time with zero residual. Checked by obs_report, the trace
// analyzer cross-check in trace_inspect, and the torture harness's fourth
// oracle.
struct CycleConservation {
  Duration elapsed;       // now - cycles_epoch
  Duration ledger_total;  // sum over all buckets
  Duration residual;      // elapsed - ledger_total; zero when conserved
  bool exact() const { return residual.nanos() == 0; }
};

// Fleet-summed form: with num_cores cores each accumulating wall time in
// parallel, total capacity over the window is elapsed * num_cores and the
// global ledger must account for every core-tick of it.
CycleConservation CheckCycleConservation(const KernelStats& stats, Instant now);

// Per-core form: core `core`'s own ledger must cover the elapsed window
// exactly (each core is always doing *something* — user, kernel, ipi, idle).
CycleConservation CheckCoreCycleConservation(const KernelStats& stats, int core, Instant now);

// --- Periodic snapshots (the time-series half of the observability layer) ---

// One sampling interval's worth of kernel activity: every field is the
// *delta* since the previous snapshot, so a ring of these is a time series of
// charge-category rates without storing full KernelStats copies (the
// small-memory trade: ~1/3 the size, and rates are what the consumer wants).
struct StatsDelta {
  Instant time;  // sample instant (virtual clock); interval is (prev, time]
  Duration charged[kNumChargeCategories];
  Duration sem_path_time;
  Duration compute_time;
  Duration idle_time;
  // Per-bucket cycle deltas. Conservation holds per interval too: absent a
  // charge reset inside it, the bucket sum equals time - prev.time.
  CycleLedger cycles;
  uint64_t context_switches = 0;
  uint64_t jobs_released = 0;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  uint64_t sem_acquires = 0;
  uint64_t sem_contended = 0;
  uint64_t pi_inherits = 0;
  uint64_t cse_switches_saved = 0;
  uint64_t interrupts = 0;
  uint64_t timer_dispatches = 0;
  uint64_t headroom_low_events = 0;
  uint64_t ipis = 0;
  uint64_t chain_e2e_overruns = 0;
  uint64_t chain_origins = 0;
  uint64_t stats_snapshot_drops = 0;
  // Per-interval histogram deltas (Log2Histogram::Delta of the cumulative
  // kernel histograms): merging every interval of a run reproduces the
  // whole-run histogram bit-identically.
  Log2Histogram response_hist;
  Log2Histogram headroom_hist;
  Log2Histogram chain_e2e_hist;
};

// Field-by-field delta of two cumulative snapshots over (base, now] —
// the StatsSampler interval encoding, exposed so the streaming timeseries
// layer can synthesize the tail interval at the horizon.
StatsDelta MakeStatsDelta(Instant now, const KernelStats& current, const KernelStats& base);

// Bounded ring of periodic StatsDelta samples. The kernel drives Sample()
// from a software timer when EnableStatsSampling() was called; storage is
// allocated once at construction, and when the ring fills the oldest interval
// is evicted (dropped() counts evictions, mirroring TraceSink).
class StatsSampler {
 public:
  explicit StatsSampler(size_t capacity) : samples_(capacity > 0 ? capacity : 1) {}

  // Records the interval (last sample, now] as a delta of `current` against
  // the previous cumulative snapshot. Returns true when the push evicted an
  // unread sample (the caller should count a stats_snapshot_drop).
  bool Sample(Instant now, const KernelStats& current);

  size_t size() const { return samples_.size(); }
  const StatsDelta& at(size_t index) const { return samples_.at(index); }
  uint64_t dropped() const { return dropped_; }

  // Cumulative counters at the previous sample: the base the *next* delta
  // will subtract from. The streaming timeseries layer uses it to synthesize
  // the tail interval (last sample, horizon] at collection time.
  const KernelStats& last_sample_base() const { return last_; }

  // Re-baselines the cumulative reference so the next delta starts from
  // `current` (Kernel::ResetChargeAccounting zeroes the charge Durations,
  // which would otherwise make the next interval's deltas negative).
  void Rebase(const KernelStats& current) { last_ = current; }

 private:
  RingBuffer<StatsDelta> samples_;
  KernelStats last_;  // cumulative counters at the previous sample
  uint64_t dropped_ = 0;
};

}  // namespace emeralds

#endif  // SRC_CORE_STATS_H_
