#include "src/core/timer_queue.h"

#include <algorithm>

#include "src/base/assert.h"

namespace emeralds {

void TimerQueue::SortedInsert(SoftTimerList& list, SoftTimer& timer) {
  for (SoftTimer& other : list) {
    if (Before(timer, other)) {
      list.insert_before(other, timer);
      return;
    }
  }
  list.push_back(timer);
}

void TimerQueue::Insert(SoftTimer& timer, Instant now) {
  EM_ASSERT_MSG(!timer.armed(), "Insert of an already-armed timer");
  if (impl_ == TimerQueueImpl::kSortedList) {
    SortedInsert(list_, timer);
    timer.queue_loc = kLocList;
  } else {
    MaybeAdvanceBase(now);
    FileIntoWheel(timer);
  }
  ++size_;
  if (cache_valid_ && (cached_min_ == nullptr || Before(timer, *cached_min_))) {
    cached_min_ = &timer;
  }
}

void TimerQueue::FileIntoWheel(SoftTimer& timer) {
  uint64_t tick = TickOf(timer.expiry);
  if (tick < base_tick_) {
    // Already behind the wheel base (an arm in the past, or at most one tick
    // of slack): park it on the ordered due list, which Min() always checks.
    SortedInsert(due_, timer);
    timer.queue_loc = kLocDue;
    return;
  }
  uint64_t delta = tick - base_tick_;
  int level = 0;
  while (level < kLevels && delta >= LevelSpan(level)) {
    ++level;
  }
  if (level == kLevels) {
    SortedInsert(overflow_, timer);
    timer.queue_loc = kLocOverflow;
    return;
  }
  int slot = static_cast<int>((tick >> (kSlotBits * level)) & (kSlots - 1));
  levels_[level][slot].push_back(timer);
  timer.queue_loc = static_cast<int8_t>(level);
  timer.wheel_slot = static_cast<uint8_t>(slot);
}

void TimerQueue::MaybeAdvanceBase(Instant now) {
  uint64_t now_tick = TickOf(now);
  if (size_ == 0) {
    base_tick_ = std::max(base_tick_, now_tick);
    return;
  }
  if (!cache_valid_ || cached_min_ == nullptr) {
    return;  // no cheap lower bound on the pending minimum; keep the old base
  }
  // The base may move up to min(now, pending minimum): that keeps every filed
  // timer's tick at or ahead of the base while re-anchoring the levels near
  // the present, so new near-future arms land in the finest level.
  uint64_t bound = std::min(now_tick, TickOf(cached_min_->expiry));
  if (bound <= base_tick_) {
    return;
  }
  base_tick_ = bound;
  // Pull overflow timers whose horizon now fits the outermost level into the
  // wheel. The overflow list is ordered, so eligible timers form its prefix.
  for (;;) {
    SoftTimer* front = overflow_.front();
    if (front == nullptr) {
      break;
    }
    uint64_t tick = TickOf(front->expiry);
    if (tick - base_tick_ >= LevelSpan(kLevels - 1)) {
      break;
    }
    overflow_.erase(*front);
    FileIntoWheel(*front);
  }
}

void TimerQueue::Remove(SoftTimer& timer) {
  EM_ASSERT_MSG(timer.armed(), "Remove of an unarmed timer");
  switch (timer.queue_loc) {
    case kLocList:
      list_.erase(timer);
      break;
    case kLocOverflow:
      overflow_.erase(timer);
      break;
    case kLocDue:
      due_.erase(timer);
      break;
    default:
      EM_ASSERT_MSG(timer.queue_loc >= 0 && timer.queue_loc < kLevels,
                    "timer in no queue location");
      levels_[timer.queue_loc][timer.wheel_slot].erase(timer);
      break;
  }
  timer.queue_loc = kLocNone;
  --size_;
  if (cached_min_ == &timer) {
    cached_min_ = nullptr;
    cache_valid_ = false;
  }
}

SoftTimer* TimerQueue::LevelMin(int level) {
  // Scan the level's slots starting at the base cursor. Filing guarantees
  // every resident's tick t satisfies base <= t < base + LevelSpan(level), so
  // t >> (kSlotBits * level) is either the scan position's absolute slot
  // number ("unwrapped") or exactly kSlots past it ("wrapped"). Unwrapped
  // entries at scan position i expire strictly before every unwrapped entry
  // at position j > i and before every wrapped entry anywhere, so the scan
  // can stop at the first slot holding an unwrapped entry; wrapped entries
  // seen along the way are only candidates if no unwrapped entry exists.
  SoftTimer* best_unwrapped = nullptr;
  SoftTimer* best_wrapped = nullptr;
  uint64_t cursor = base_tick_ >> (kSlotBits * level);
  for (int i = 0; i < kSlots; ++i) {
    uint64_t abs_slot = cursor + static_cast<uint64_t>(i);
    SoftTimerList& bucket = levels_[level][abs_slot & (kSlots - 1)];
    if (bucket.empty()) {
      continue;
    }
    for (SoftTimer& t : bucket) {
      if ((TickOf(t.expiry) >> (kSlotBits * level)) == abs_slot) {
        if (best_unwrapped == nullptr || Before(t, *best_unwrapped)) {
          best_unwrapped = &t;
        }
      } else if (best_wrapped == nullptr || Before(t, *best_wrapped)) {
        best_wrapped = &t;
      }
    }
    if (best_unwrapped != nullptr) {
      break;
    }
  }
  return best_unwrapped != nullptr ? best_unwrapped : best_wrapped;
}

SoftTimer* TimerQueue::RecomputeMin() {
  SoftTimer* best = due_.front();  // ordered: front is the list minimum
  for (int level = 0; level < kLevels; ++level) {
    SoftTimer* candidate = LevelMin(level);
    if (candidate != nullptr && (best == nullptr || Before(*candidate, *best))) {
      best = candidate;
    }
  }
  SoftTimer* overflow_front = overflow_.front();
  if (overflow_front != nullptr && (best == nullptr || Before(*overflow_front, *best))) {
    best = overflow_front;
  }
  return best;
}

SoftTimer* TimerQueue::Min() {
  if (impl_ == TimerQueueImpl::kSortedList) {
    return list_.front();
  }
  if (!cache_valid_) {
    cached_min_ = RecomputeMin();
    cache_valid_ = true;
  }
  return cached_min_;
}

void TimerQueue::Clear() {
  list_.clear();
  overflow_.clear();
  due_.clear();
  for (int level = 0; level < kLevels; ++level) {
    for (int slot = 0; slot < kSlots; ++slot) {
      levels_[level][slot].clear();
    }
  }
  size_ = 0;
  cached_min_ = nullptr;
  cache_valid_ = true;
}

}  // namespace emeralds
