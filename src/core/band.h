// Scheduler bands: the per-queue structures of the CSD framework.
//
// A band owns one scheduler queue. The paper's three implementations
// (Table 1) are reproduced exactly:
//
//  * EdfBand   — a single unsorted list holding ready AND blocked tasks;
//                block/unblock flip one TCB entry (O(1)), selection parses the
//                whole list for the earliest-deadline ready task (O(n)).
//  * RmBand    — a priority-sorted list holding ready AND blocked tasks with a
//                `highestp` pointer to the first ready task; selection is
//                O(1), blocking scans forward for the next ready task (O(n)
//                worst case), unblocking compares against highestp (O(1)).
//  * RmHeapBand— a binary heap of ready tasks (the Table 1 comparison
//                structure); block/unblock are O(log n) with large constants.
//
// Every operation reports the number of primitive units it actually performed
// (nodes visited / heap levels traversed); the kernel converts those to
// virtual time through the cost model.

#ifndef SRC_CORE_BAND_H_
#define SRC_CORE_BAND_H_

#include <memory>
#include <vector>

#include "src/base/intrusive_list.h"
#include "src/base/static_vector.h"
#include "src/core/tcb.h"
#include "src/hal/cost_model.h"

namespace emeralds {

struct QueueCharge {
  QueueKind kind;
  QueueOp op;
  int units;
  int band;  // which CSD band's queue did the work (ledger per-band split)
};

// A kernel entry performs at most a handful of queue operations.
using ChargeList = StaticVector<QueueCharge, 8>;

class Band {
 public:
  explicit Band(int index) : index_(index) {}
  virtual ~Band() = default;
  Band(const Band&) = delete;
  Band& operator=(const Band&) = delete;

  int index() const { return index_; }
  virtual QueueKind kind() const = 0;
  virtual size_t task_count() const = 0;

  // Membership (thread creation/exit). The task must not be ready.
  virtual void AddTask(Tcb& task) = 0;
  virtual void RemoveTask(Tcb& task) = 0;

  // Marks a ready task blocked / a blocked task ready, appending the queue
  // charge incurred.
  virtual void Block(Tcb& task, ChargeList& charges) = 0;
  virtual void Unblock(Tcb& task, ChargeList& charges) = 0;

  // Highest-priority ready task, or nullptr; `units` is the parse work.
  virtual Tcb* SelectReady(int* units) = 0;

  // O(1) ready check (the DP counter / highestp test of Section 5.3).
  virtual bool HasReady() const = 0;

  // Re-evaluates a READY task's position after its effective priority
  // changed (un-optimized PI path). Returns primitive units performed.
  virtual int Reposition(Tcb& task) = 0;

  // Invariant checks for tests; panics on violation.
  virtual void Validate() const = 0;

 private:
  int index_;
};

class EdfBand : public Band {
 public:
  explicit EdfBand(int index) : Band(index) {}
  ~EdfBand() override;

  QueueKind kind() const override { return QueueKind::kEdfList; }
  size_t task_count() const override { return tasks_.size(); }
  void AddTask(Tcb& task) override;
  void RemoveTask(Tcb& task) override;
  void Block(Tcb& task, ChargeList& charges) override;
  void Unblock(Tcb& task, ChargeList& charges) override;
  Tcb* SelectReady(int* units) override;
  bool HasReady() const override { return ready_count_ > 0; }
  int Reposition(Tcb& task) override { return 0; }  // unsorted: nothing to do
  void Validate() const override;

 private:
  IntrusiveList<Tcb, &Tcb::band_node> tasks_;
  int ready_count_ = 0;
};

class RmBand : public Band {
 public:
  explicit RmBand(int index) : Band(index) {}
  ~RmBand() override;

  QueueKind kind() const override { return QueueKind::kRmList; }
  size_t task_count() const override { return tasks_.size(); }
  void AddTask(Tcb& task) override;
  void RemoveTask(Tcb& task) override;
  void Block(Tcb& task, ChargeList& charges) override;
  void Unblock(Tcb& task, ChargeList& charges) override;
  Tcb* SelectReady(int* units) override;
  bool HasReady() const override { return highestp_ != nullptr; }
  int Reposition(Tcb& task) override;
  void Validate() const override;

  // --- Place-holder PI support (Section 6.2) ---

  // Exchanges the queue positions of `holder` (ready) and `waiter` (blocked)
  // and transfers `waiter`'s rank to `holder`. O(1) on the virtual machine;
  // the host-side highestp fix-up below is not charged because the modelled
  // operation needs none (the holder lands on a slot whose neighbourhood is
  // already known).
  void SwapForPi(Tcb& holder, Tcb& waiter);

  // Moves `task` (whose effective_rm_rank was just restored/changed) back to
  // rank position with a sorted re-insert; returns nodes visited. This is the
  // standard-mode PI path the paper improves upon.
  int SortedReinsert(Tcb& task);

  Tcb* highestp() const { return highestp_; }

 private:
  void RecomputeHighestp();

  IntrusiveList<Tcb, &Tcb::band_node> tasks_;  // sorted by effective_rm_rank
  Tcb* highestp_ = nullptr;
};

class RmHeapBand : public Band {
 public:
  explicit RmHeapBand(int index) : Band(index) { heap_.reserve(256); }
  ~RmHeapBand() override;

  QueueKind kind() const override { return QueueKind::kRmHeap; }
  size_t task_count() const override { return tasks_.size(); }
  void AddTask(Tcb& task) override;
  void RemoveTask(Tcb& task) override;
  void Block(Tcb& task, ChargeList& charges) override;
  void Unblock(Tcb& task, ChargeList& charges) override;
  Tcb* SelectReady(int* units) override;
  bool HasReady() const override { return !heap_.empty(); }
  int Reposition(Tcb& task) override;
  void Validate() const override;

 private:
  bool Less(const Tcb& a, const Tcb& b) const;  // heap order: higher priority
  int SiftUp(size_t index);
  int SiftDown(size_t index);
  void HeapRemove(size_t index, int* units);

  IntrusiveList<Tcb, &Tcb::band_node> tasks_;  // membership (any state)
  std::vector<Tcb*> heap_;                     // ready tasks only
};

// Factory keyed on the Table 1 queue kinds.
std::unique_ptr<Band> MakeBand(QueueKind kind, int index);

}  // namespace emeralds

#endif  // SRC_CORE_BAND_H_
