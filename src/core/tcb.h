// Thread control block.
//
// One TCB per thread, allocated from the kernel pool at creation. The paper's
// scheduler design hinges on TCBs living *inside* the scheduler queues whether
// ready or blocked (Section 5.1), and on cheap state flips: blocking and
// unblocking are "changing one entry in the task control block".

#ifndef SRC_CORE_TCB_H_
#define SRC_CORE_TCB_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <span>

#include "src/base/intrusive_list.h"
#include "src/base/status.h"
#include "src/base/time.h"
#include "src/core/api.h"
#include "src/core/ids.h"
#include "src/core/timer.h"
#include "src/hal/cycles.h"
#include "src/hal/trace.h"

namespace emeralds {

struct Semaphore;

enum class ThreadState : uint8_t {
  kNew,       // created, not yet released
  kReady,     // runnable (possibly mid-compute or resume-pending)
  kRunning,   // the thread the CPU is executing
  kBlocked,   // waiting; see block_reason
  kFinished,  // body returned
};

enum class BlockReason : uint8_t {
  kNone,
  kWaitPeriod,      // between jobs
  kWaitSem,         // on a semaphore wait queue
  kPreAcquire,      // frozen in a semaphore's pre-acquire queue (Section 6.3.1)
  kWaitCondvar,
  kWaitMailboxRecv,
  kWaitMailboxSend,
  kWaitIrq,
  kSleep,
};

const char* ThreadStateToString(ThreadState state);
const char* BlockReasonToString(BlockReason reason);

// Deferred user-level operation completed when the staged compute drains
// (state-message copies happen in user time and are preemptible).
enum class PendingOpKind : uint8_t {
  kNone,
  kStateWriteCommit,
  kStateReadValidate,
};

struct Tcb {
  // --- Identity / static parameters ---
  ThreadId id;
  ProcessId process;
  char name[24] = {};
  Duration period;             // zero => aperiodic
  Duration relative_deadline;  // == period unless overridden
  Duration first_release_offset;
  bool periodic = false;
  Duration wcet;  // informational
  int core = 0;   // pinned core (partitioned SMP; never changes after create)

  // --- Scheduling (base and effective priority) ---
  int base_band = 0;
  int effective_band = 0;
  int base_rm_rank = 0;       // lower = higher fixed priority
  int effective_rm_rank = 0;  // tracks queue position in the FP band
  Instant effective_deadline = Instant::Max();  // EDF key (may be inherited)
  bool ready = false;         // the "one entry in the TCB" the queues flip

  // Queue membership nodes.
  ListNode<Tcb> band_node;   // band task list / FP sorted queue
  ListNode<Tcb> boost_node;  // temporary PI boost into a higher band
  int boosted_into_band = -1;
  ListNode<Tcb> wait_node;     // semaphore / condvar / mailbox wait queues
  ListNode<Tcb> preacq_node;   // semaphore pre-acquire queue
  size_t heap_index = SIZE_MAX;  // position in RmHeap (ready tasks only)

  // --- Job state ---
  ThreadState state = ThreadState::kNew;
  BlockReason block_reason = BlockReason::kNone;
  uint64_t job_number = 0;
  Instant job_release;
  Instant job_deadline = Instant::Max();
  uint32_t pending_releases = 0;  // releases that arrived while still busy
  bool miss_recorded = false;     // current job's miss already counted
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  Duration cpu_time;
  Duration max_response;    // worst job response time (completion - release)
  Duration total_response;  // sum over completed jobs (for averages)

  // --- Cycle attribution / headroom monitor ---
  // Per-task ledger: charges made while this thread was current (kUser equals
  // cpu_time; the rest is kernel work billed to the thread that triggered
  // it). Cumulative since boot, like cpu_time — ResetChargeAccounting leaves
  // it alone.
  CycleLedger cycles;
  // EWMA (alpha = 1/4, integer) of per-job attributed cycles; the first
  // completed job seeds it.
  Duration job_cost_ewma;
  bool job_cost_seeded = false;
  Duration job_cost_baseline;  // per-task ledger total at job start
  // Worst observed slack at completion (deadline - completion; negative on a
  // miss), and jobs flagged low-headroom at release by the predictor.
  Duration headroom_min;
  bool headroom_seen = false;
  uint64_t headroom_low_events = 0;

  // --- Synchronization state ---
  Semaphore* blocked_on = nullptr;  // semaphore this thread waits on
  // Non-null while this thread occupies a borrowed FP-queue slot via the
  // place-holder swap; identifies which held semaphore the swap belongs to.
  Semaphore* pi_swap_sem = nullptr;
  // Semaphores currently held (intrusive list lives in Semaphore::held_node).
  // Head pointer only; see Semaphore for linkage.
  Semaphore* held_head = nullptr;
  // CSE: hint set by the blocking call preceding an acquire, the semaphore
  // whose pre-acquire queue we sit in, and whether the lock was already
  // handed to us while blocked.
  SemId wakeup_hint = kNoSem;
  Semaphore* preacq_sem = nullptr;
  bool cse_waiter = false;   // queued on the semaphore by the early-PI path
  bool cse_granted = false;  // lock handed over before acquire_sem() ran

  // --- Execution ---
  // The body factory is kept alive here for the thread's lifetime: when the
  // body is a capturing lambda, the coroutine references the closure object,
  // so the closure must outlive the coroutine (a classic C++20 coroutine
  // hazard). The kernel invokes this stored copy, never the caller's.
  std::function<class ThreadBody(class ThreadApi)> body_factory;
  std::coroutine_handle<> coroutine;
  bool started = false;
  bool resume_pending = false;     // suspended at a completed syscall
  Duration remaining_compute;      // outstanding Compute() budget

  // Deferred user-level op (state messages).
  PendingOpKind pending_op = PendingOpKind::kNone;
  SmsgId pending_smsg;
  std::span<const uint8_t> pending_write_data;
  std::span<uint8_t> pending_read_buffer;
  int pending_slot = -1;
  uint64_t pending_seq = 0;
  int pending_retries = 0;

  // --- Syscall results (read by await_resume) ---
  Status syscall_status = Status::kOk;
  size_t syscall_length = 0;
  uint64_t syscall_sequence = 0;
  int syscall_retries = 0;

  // --- Blocked-operation staging ---
  std::span<uint8_t> recv_buffer;          // destination for a blocked Recv
  std::span<const uint8_t> send_data;      // payload of a blocked Send
  MailboxId waiting_mailbox;
  CondvarId waiting_condvar;
  SemId condvar_mutex;                     // mutex to re-acquire after Wait
  int waiting_irq_line = -1;
  uint32_t irq_pending_count = 0;          // IRQs that fired while not waiting

  // --- Causal chain tracing ---
  // Token the thread currently carries: set by the most recent consuming
  // operation (or the job release), stamped into whatever the thread
  // produces next, cleared at job completion.
  CausalToken chain_token;
  // Token latched alongside irq_pending_count when the IRQ fired while the
  // driver was not waiting; consumed when SysWaitIrq drains the latch.
  CausalToken irq_latched_token;

  // --- Timers ---
  SoftTimer period_timer;
  SoftTimer timeout_timer;

  bool is_blocked() const { return state == ThreadState::kBlocked; }
  bool runnable() const { return state == ThreadState::kReady || state == ThreadState::kRunning; }
};

}  // namespace emeralds

#endif  // SRC_CORE_TCB_H_
