#include "src/core/tcb.h"

namespace emeralds {

const char* ThreadStateToString(ThreadState state) {
  switch (state) {
    case ThreadState::kNew:
      return "new";
    case ThreadState::kReady:
      return "ready";
    case ThreadState::kRunning:
      return "running";
    case ThreadState::kBlocked:
      return "blocked";
    case ThreadState::kFinished:
      return "finished";
  }
  return "?";
}

const char* BlockReasonToString(BlockReason reason) {
  switch (reason) {
    case BlockReason::kNone:
      return "none";
    case BlockReason::kWaitPeriod:
      return "wait_period";
    case BlockReason::kWaitSem:
      return "wait_sem";
    case BlockReason::kPreAcquire:
      return "pre_acquire";
    case BlockReason::kWaitCondvar:
      return "wait_condvar";
    case BlockReason::kWaitMailboxRecv:
      return "wait_mailbox_recv";
    case BlockReason::kWaitMailboxSend:
      return "wait_mailbox_send";
    case BlockReason::kWaitIrq:
      return "wait_irq";
    case BlockReason::kSleep:
      return "sleep";
  }
  return "?";
}

}  // namespace emeralds
