#include "src/core/taskset_runner.h"

#include <cstdio>

namespace emeralds {

std::vector<int> BandsFromPartition(const std::vector<int>& partition) {
  std::vector<int> bands;
  for (size_t band = 0; band < partition.size(); ++band) {
    EM_ASSERT(partition[band] >= 0);
    for (int k = 0; k < partition[band]; ++k) {
      bands.push_back(static_cast<int>(band));
    }
  }
  return bands;
}

std::vector<ThreadId> SpawnTaskSet(Kernel& kernel, const TaskSet& set,
                                   const std::vector<int>& bands) {
  EM_ASSERT_MSG(bands.empty() || bands.size() == static_cast<size_t>(set.size()),
                "band list size %zu does not match task count %d", bands.size(), set.size());
  std::vector<ThreadId> ids;
  ids.reserve(set.tasks.size());
  for (int i = 0; i < set.size(); ++i) {
    const PeriodicTask& task = set.tasks[i];
    ThreadParams params;
    params.name = "task";
    params.period = task.period;
    params.relative_deadline = task.deadline;
    params.wcet = task.wcet;
    params.band = bands.empty() ? -1 : bands[i];
    Duration wcet = task.wcet;
    params.body = [wcet](ThreadApi api) -> ThreadBody {
      for (;;) {
        co_await api.Compute(wcet);
        co_await api.WaitNextPeriod();
      }
    };
    Result<ThreadId> id = kernel.CreateThread(params);
    EM_ASSERT_MSG(id.ok(), "SpawnTaskSet: CreateThread failed: %s",
                  StatusToString(id.status()));
    ids.push_back(id.value());
  }
  return ids;
}

std::vector<TaskRunRow> CollectPerTaskStats(const Kernel& kernel,
                                            const std::vector<ThreadId>& ids) {
  std::vector<TaskRunRow> rows;
  rows.reserve(ids.size());
  for (ThreadId id : ids) {
    const Tcb& t = kernel.thread(id);
    TaskRunRow row;
    row.id = id;
    std::snprintf(row.name, sizeof(row.name), "%s", t.name);
    row.period = t.period;
    row.jobs_completed = t.jobs_completed;
    row.deadline_misses = t.deadline_misses;
    row.max_response = t.max_response;
    row.avg_response =
        t.jobs_completed > 0 ? t.total_response / static_cast<int64_t>(t.jobs_completed)
                             : Duration();
    row.cpu_time = t.cpu_time;
    row.user_cycles = t.cycles.at(CycleBucket::kUser);
    row.overhead_cycles = t.cycles.total() - row.user_cycles;
    row.job_cost_ewma = t.job_cost_ewma;
    row.headroom_min = t.headroom_min;
    row.headroom_seen = t.headroom_seen;
    row.headroom_low_events = t.headroom_low_events;
    rows.push_back(row);
  }
  return rows;
}

TaskSetRunStats CollectRunStats(const Kernel& kernel, const std::vector<ThreadId>& ids) {
  TaskSetRunStats stats;
  for (ThreadId id : ids) {
    const Tcb& t = kernel.thread(id);
    stats.jobs_completed += t.jobs_completed;
    stats.deadline_misses += t.deadline_misses;
    if (t.max_response > stats.worst_response) {
      stats.worst_response = t.max_response;
    }
  }
  return stats;
}

}  // namespace emeralds
