#include "src/core/scheduler.h"

namespace emeralds {

Scheduler::Scheduler(const SchedulerSpec& spec) {
  EM_ASSERT_MSG(!spec.bands.empty(), "scheduler needs at least one band");
  for (size_t i = 0; i < spec.bands.size(); ++i) {
    if (i + 1 < spec.bands.size()) {
      // CSD structure: every non-final band is a dynamic-priority EDF queue.
      EM_ASSERT_MSG(spec.bands[i] == QueueKind::kEdfList,
                    "non-final scheduler bands must be EDF queues");
    }
    bands_.push_back(MakeBand(spec.bands[i], static_cast<int>(i)));
  }
}

Scheduler::~Scheduler() {
  for (auto& list : boosted_) {
    list.clear();
  }
}

void Scheduler::AddThread(Tcb& task) {
  if (task.base_band < 0) {
    task.base_band = num_bands() - 1;
  }
  EM_ASSERT_MSG(task.base_band < num_bands(), "thread band %d out of range", task.base_band);
  task.effective_band = task.base_band;
  bands_[task.base_band]->AddTask(task);
}

void Scheduler::RemoveThread(Tcb& task) {
  if (task.boosted_into_band >= 0) {
    RemoveBoost(task);
  }
  bands_[task.base_band]->RemoveTask(task);
}

void Scheduler::Block(Tcb& task, ChargeList& charges) {
  bands_[task.base_band]->Block(task, charges);
  if (task.boosted_into_band >= 0) {
    --boosted_ready_[task.boosted_into_band];
  }
}

void Scheduler::Unblock(Tcb& task, ChargeList& charges) {
  bands_[task.base_band]->Unblock(task, charges);
  if (task.boosted_into_band >= 0) {
    ++boosted_ready_[task.boosted_into_band];
  }
}

Tcb* Scheduler::Select(ChargeList& charges, int* queues_parsed) {
  int parsed = 0;
  for (int b = 0; b < num_bands(); ++b) {
    ++parsed;
    Band& band = *bands_[b];
    bool band_ready = band.HasReady();
    bool boost_ready = boosted_ready_[b] > 0;
    if (!band_ready && !boost_ready) {
      continue;  // "the DP queue is skipped completely"
    }
    int units = 0;
    Tcb* best = band_ready ? band.SelectReady(&units) : nullptr;
    if (boost_ready) {
      // Boosted foreigners are parsed alongside the band's own queue.
      for (Tcb& task : boosted_[b]) {
        ++units;
        if (!task.ready) {
          continue;
        }
        if (best == nullptr || HigherPriority(task, *best)) {
          best = &task;
        }
      }
    }
    EM_ASSERT(best != nullptr);
    charges.push_back(QueueCharge{band.kind(), QueueOp::kSelect, units, band.index()});
    *queues_parsed = parsed;
    return best;
  }
  *queues_parsed = parsed;
  return nullptr;
}

void Scheduler::BoostInto(Tcb& task, int band) {
  EM_ASSERT(band >= 0 && band < num_bands());
  EM_ASSERT_MSG(band < task.effective_band, "boost must raise the band");
  if (task.boosted_into_band >= 0) {
    boosted_[task.boosted_into_band].erase(task);
    if (task.ready) {
      --boosted_ready_[task.boosted_into_band];
    }
  }
  boosted_[band].push_back(task);
  task.boosted_into_band = band;
  task.effective_band = band;
  if (task.ready) {
    ++boosted_ready_[band];
  }
}

void Scheduler::RemoveBoost(Tcb& task) {
  EM_ASSERT(task.boosted_into_band >= 0);
  boosted_[task.boosted_into_band].erase(task);
  if (task.ready) {
    --boosted_ready_[task.boosted_into_band];
  }
  task.boosted_into_band = -1;
  task.effective_band = task.base_band;
}

bool Scheduler::CanSwapFp(const Tcb& holder, const Tcb& waiter) const {
  if (holder.base_band != waiter.base_band) {
    return false;
  }
  if (bands_[holder.base_band]->kind() != QueueKind::kRmList) {
    return false;
  }
  if (holder.boosted_into_band >= 0 || waiter.boosted_into_band >= 0) {
    return false;
  }
  return !waiter.ready;
}

RmBand* Scheduler::FpBandOf(const Tcb& task) {
  Band& band = *bands_[task.base_band];
  if (band.kind() != QueueKind::kRmList) {
    return nullptr;
  }
  return static_cast<RmBand*>(&band);
}

bool Scheduler::HigherPriority(const Tcb& a, const Tcb& b) const {
  if (a.effective_band != b.effective_band) {
    return a.effective_band < b.effective_band;
  }
  int band = a.effective_band;
  EM_ASSERT(band >= 0 && band < num_bands());
  if (bands_[band]->kind() == QueueKind::kEdfList) {
    if (a.effective_deadline != b.effective_deadline) {
      return a.effective_deadline < b.effective_deadline;
    }
  }
  if (a.effective_rm_rank != b.effective_rm_rank) {
    return a.effective_rm_rank < b.effective_rm_rank;
  }
  return a.id < b.id;
}

void Scheduler::Validate() const {
  for (const auto& band : bands_) {
    band->Validate();
  }
  for (int b = 0; b < num_bands(); ++b) {
    int ready = 0;
    for (const Tcb& task : const_cast<Scheduler*>(this)->boosted_[b]) {
      EM_ASSERT(task.boosted_into_band == b);
      if (task.ready) {
        ++ready;
      }
    }
    EM_ASSERT_MSG(ready == boosted_ready_[b], "boosted ready counter drift in band %d", b);
  }
}

}  // namespace emeralds
