// Kernel software timers.
//
// The kernel multiplexes all time-triggered work (periodic job releases,
// sleep expirations, receive timeouts) onto the single hardware one-shot
// timer, keeping the pending timers in an expiry-ordered intrusive list —
// the structure a small-memory RTOS would use.

#ifndef SRC_CORE_TIMER_H_
#define SRC_CORE_TIMER_H_

#include <cstdint>

#include "src/base/intrusive_list.h"
#include "src/base/time.h"

namespace emeralds {

struct Tcb;
struct UserTimer;

enum class TimerKind : uint8_t {
  kPeriodRelease,  // periodic job release for `owner`
  kTimeout,        // sleep / receive-timeout for `owner`
  kUserTimer,      // application timer object (`user` points at it)
  kStatsSample,    // periodic KernelStats snapshot (observability sampler)
};

// Pending-timer container implementation (see src/core/timer_queue.h). Both
// order timers identically — by (expiry, arm_seq) — so a kernel runs
// bit-identically under either; the sorted list is kept as the reference
// implementation for differential testing.
enum class TimerQueueImpl : uint8_t {
  kWheel,       // hierarchical timer wheel: O(1) arm/cancel
  kSortedList,  // single expiry-ordered intrusive list: O(n) arm
};

struct SoftTimer {
  TimerKind kind = TimerKind::kPeriodRelease;
  Tcb* owner = nullptr;       // kPeriodRelease / kTimeout
  UserTimer* user = nullptr;  // kUserTimer
  Instant expiry;
  uint64_t arm_seq = 0;  // tie-break so simultaneous expiries are deterministic
  ListNode<SoftTimer> node;

  // Which TimerQueue container currently links `node` (an intrusive erase
  // must go through the owning list). Values are TimerQueue-private: wheel
  // level index, or one of its sentinel locations. Unused by the sorted-list
  // implementation.
  int8_t queue_loc = -1;
  uint8_t wheel_slot = 0;

  bool armed() const { return node.linked(); }
};

using SoftTimerList = IntrusiveList<SoftTimer, &SoftTimer::node>;

}  // namespace emeralds

#endif  // SRC_CORE_TIMER_H_
