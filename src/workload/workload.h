// Task-set models and the paper's workload generator.
//
// Figures 3-5 use randomly generated periodic workloads: periods are drawn so
// that single-digit (5-9 ms), double-digit (10-99 ms) and triple-digit
// (100-999 ms) values are equally likely; execution times are random and then
// scaled until the workload becomes infeasible (breakdown). Period-divided
// variants (/2, /3) produce Figures 4 and 5. Table 2 is the fixed ten-task
// example whose RM schedule misses tau_5's deadline.

#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"

namespace emeralds {

struct PeriodicTask {
  Duration period;
  Duration wcet;
  Duration deadline;  // relative; equals period unless set otherwise

  double utilization() const {
    return static_cast<double>(wcet.nanos()) / static_cast<double>(period.nanos());
  }
};

struct TaskSet {
  std::vector<PeriodicTask> tasks;

  int size() const { return static_cast<int>(tasks.size()); }
  double Utilization() const;

  // Sorts shortest-period-first (rate-monotonic priority order; stable).
  void SortByPeriod();
  bool IsSortedByPeriod() const;

  // Returns a copy with every execution time multiplied by `factor`.
  TaskSet ScaledBy(double factor) const;
  // Returns a copy with every period (and deadline) divided by `divisor`
  // (Figures 4 and 5).
  TaskSet PeriodsDividedBy(int64_t divisor) const;
};

struct WorkloadGenConfig {
  // Uniform utilization weight range per task before normalization.
  double min_task_weight = 0.02;
  double max_task_weight = 0.20;
  // Total utilization the generated set is normalized to (the breakdown
  // search rescales from here, so the exact value only anchors the search).
  double initial_utilization = 0.50;
};

// One random workload per the paper's recipe. Periods are whole milliseconds.
TaskSet GenerateWorkload(Rng& rng, int num_tasks, const WorkloadGenConfig& config = {});

// Table 2: U = 0.88, feasible under EDF, infeasible under RM.
TaskSet Table2Workload();

}  // namespace emeralds

#endif  // SRC_WORKLOAD_WORKLOAD_H_
