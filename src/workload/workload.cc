#include "src/workload/workload.h"

#include <algorithm>

#include "src/base/assert.h"

namespace emeralds {

double TaskSet::Utilization() const {
  double u = 0.0;
  for (const PeriodicTask& task : tasks) {
    u += task.utilization();
  }
  return u;
}

void TaskSet::SortByPeriod() {
  std::stable_sort(tasks.begin(), tasks.end(), [](const PeriodicTask& a, const PeriodicTask& b) {
    return a.period < b.period;
  });
}

bool TaskSet::IsSortedByPeriod() const {
  for (size_t i = 1; i < tasks.size(); ++i) {
    if (tasks[i].period < tasks[i - 1].period) {
      return false;
    }
  }
  return true;
}

TaskSet TaskSet::ScaledBy(double factor) const {
  EM_ASSERT(factor >= 0.0);
  TaskSet scaled = *this;
  for (PeriodicTask& task : scaled.tasks) {
    task.wcet = Duration::FromNanos(
        static_cast<int64_t>(static_cast<double>(task.wcet.nanos()) * factor + 0.5));
  }
  return scaled;
}

TaskSet TaskSet::PeriodsDividedBy(int64_t divisor) const {
  EM_ASSERT(divisor >= 1);
  TaskSet divided = *this;
  for (PeriodicTask& task : divided.tasks) {
    task.period = task.period / divisor;
    task.deadline = task.deadline / divisor;
  }
  return divided;
}

TaskSet GenerateWorkload(Rng& rng, int num_tasks, const WorkloadGenConfig& config) {
  EM_ASSERT(num_tasks > 0);
  TaskSet set;
  set.tasks.reserve(num_tasks);
  double weight_sum = 0.0;
  std::vector<double> weights(num_tasks);
  for (int i = 0; i < num_tasks; ++i) {
    PeriodicTask task;
    // "each period has an equal probability of being single-digit (5-9 ms),
    // double-digit (10-99 ms), or triple-digit (100-999 ms)".
    int64_t period_ms = 0;
    switch (rng.UniformInt(0, 2)) {
      case 0:
        period_ms = rng.UniformInt(5, 9);
        break;
      case 1:
        period_ms = rng.UniformInt(10, 99);
        break;
      default:
        period_ms = rng.UniformInt(100, 999);
        break;
    }
    task.period = Milliseconds(period_ms);
    task.deadline = task.period;
    weights[i] = rng.UniformReal(config.min_task_weight, config.max_task_weight);
    weight_sum += weights[i];
    set.tasks.push_back(task);
  }
  // Normalize per-task utilizations to the configured starting total; the
  // breakdown search rescales from here anyway.
  for (int i = 0; i < num_tasks; ++i) {
    double task_util = config.initial_utilization * weights[i] / weight_sum;
    int64_t wcet_ns =
        static_cast<int64_t>(static_cast<double>(set.tasks[i].period.nanos()) * task_util + 0.5);
    set.tasks[i].wcet = Duration::FromNanos(std::max<int64_t>(wcet_ns, 1000));
  }
  set.SortByPeriod();
  return set;
}

TaskSet Table2Workload() {
  // The OCR of the paper dropped Table 2's numeric cells; the values below
  // are reconstructed from the surrounding text and Figure 2: tasks 1-4 run
  // in [0,4) and again before t=8 under RM, starving tau_5 (d_5 = 8 ms),
  // while EDF runs tau_5 before the second invocations; tasks 6-10 have
  // "much longer periods"; total utilization is 0.88.
  TaskSet set;
  auto add = [&set](int64_t period_ms, int64_t wcet_us) {
    PeriodicTask task;
    task.period = Milliseconds(period_ms);
    task.deadline = task.period;
    task.wcet = Microseconds(wcet_us);
    set.tasks.push_back(task);
  };
  add(4, 1000);    // tau_1
  add(5, 1000);    // tau_2
  add(6, 1000);    // tau_3
  add(7, 1000);    // tau_4
  add(8, 1000);    // tau_5 — the "troublesome task"
  add(100, 100);   // tau_6
  add(150, 100);   // tau_7
  add(200, 100);   // tau_8
  add(250, 100);   // tau_9
  add(300, 100);   // tau_10
  // Utilization: 1/4 + 1/5 + 1/6 + 1/7 + 1/8 + small = 0.887 ~= 0.88.
  return set;
}

}  // namespace emeralds
